#include "cfg/cfg_ir.hpp"

#include <sstream>

#include "support/assert.hpp"

namespace bm {

void CfgProgram::set_num_vars(std::uint32_t n) {
  num_vars_ = n;
  for (BasicBlock& b : blocks_) b.body.set_num_vars(n);
}

BlockId CfgProgram::append(BasicBlock block) {
  block.body.set_num_vars(num_vars_);
  blocks_.push_back(std::move(block));
  return static_cast<BlockId>(blocks_.size() - 1);
}

void CfgProgram::set_entry(BlockId b) {
  BM_REQUIRE(b < blocks_.size(), "entry block out of range");
  entry_ = b;
}

void CfgProgram::validate() const {
  BM_REQUIRE(!blocks_.empty(), "control-flow program has no blocks");
  BM_REQUIRE(entry_ < blocks_.size(), "entry block out of range");
  for (const BasicBlock& b : blocks_) {
    BM_REQUIRE(b.body.num_vars() == num_vars_, "block variable-space mismatch");
    b.body.validate();
    BM_REQUIRE(b.max_executions >= 1, "max_executions must be >= 1");
    switch (b.term) {
      case BasicBlock::Terminator::kExit:
        break;
      case BasicBlock::Terminator::kJump:
        BM_REQUIRE(b.taken < blocks_.size(), "jump target out of range");
        break;
      case BasicBlock::Terminator::kBranch:
        BM_REQUIRE(b.taken < blocks_.size() && b.not_taken < blocks_.size(),
                   "branch target out of range");
        BM_REQUIRE(b.cond < b.body.size(), "branch condition out of range");
        BM_REQUIRE(!b.body[b.cond].is_store(),
                   "branch condition must be a value-producing tuple");
        break;
    }
  }
}

std::size_t CfgProgram::total_instructions() const {
  std::size_t n = 0;
  for (const BasicBlock& b : blocks_) n += b.body.size();
  return n;
}

std::string CfgProgram::to_string() const {
  std::ostringstream os;
  os << "entry: block " << entry_ << '\n';
  for (BlockId id = 0; id < blocks_.size(); ++id) {
    const BasicBlock& b = blocks_[id];
    os << "block " << id << " (" << b.body.size() << " tuples, worst-case x"
       << b.max_executions << "): ";
    switch (b.term) {
      case BasicBlock::Terminator::kExit:
        os << "exit";
        break;
      case BasicBlock::Terminator::kJump:
        os << "jump -> " << b.taken;
        break;
      case BasicBlock::Terminator::kBranch:
        os << "if t" << b.cond << " != 0 -> " << b.taken << " else -> "
           << b.not_taken;
        break;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace bm
