// Scheduling a control-flow program for a barrier MIMD: every basic block
// is scheduled with the §4 algorithms; the final rejoin barrier at each
// block boundary resets timing fuzziness to zero, so the next block starts
// statically synchronized no matter which path reached it.
#pragma once

#include <memory>
#include <vector>

#include "cfg/cfg_ir.hpp"
#include "graph/instr_dag.hpp"
#include "sched/scheduler.hpp"

namespace bm {

struct CfgBlockSchedule {
  std::unique_ptr<InstrDag> dag;
  ScheduleResult result;
};

struct CfgScheduleResult {
  const CfgProgram* cfg = nullptr;
  std::vector<CfgBlockSchedule> blocks;  ///< parallel to cfg blocks

  // Aggregated §3.1 accounting over all blocks (each counted once,
  // regardless of execution count).
  std::size_t implied_syncs = 0;
  std::size_t serialized_edges = 0;
  std::size_t barriers = 0;

  double barrier_fraction() const;
  double serialized_fraction() const;
};

/// Schedules every block. A final rejoin barrier is always added (block
/// boundaries are machine-wide synchronization points).
CfgScheduleResult schedule_cfg(const CfgProgram& cfg,
                               const SchedulerConfig& config,
                               const TimingModel& timing, Rng& rng);

/// The lockstep bound (§6 extended to control flow): a VLIW cannot run
/// data-dependent control asynchronously, so it must provision every block
/// for its static worst-case execution count at maximum instruction times.
/// Returns Σ_blocks vliw_makespan(block) × max_executions, plus
/// `control_overhead` per worst-case transfer.
Time vliw_cfg_worst_case(const CfgProgram& cfg, std::size_t procs,
                         const TimingModel& timing, Time control_overhead);

}  // namespace bm
