// Execution of a scheduled control-flow program: blocks run through the
// barrier-hardware simulator (timing) and the reference interpreter
// (values); branch decisions come from the interpreted condition tuples.
// Block boundaries cost `control_overhead` (broadcast of the branch
// decision with the rejoin barrier).
#pragma once

#include "cfg/cfg_sched.hpp"
#include "ir/interp.hpp"
#include "sim/simulator.hpp"

namespace bm {

struct CfgSimConfig {
  MachineKind machine = MachineKind::kSBM;
  SamplingMode sampling = SamplingMode::kUniform;
  Time control_overhead = 1;        ///< cycles per block transfer
  std::size_t max_transfers = 1u << 20;  ///< runaway guard
};

struct CfgExecResult {
  Time completion = 0;
  std::vector<std::int64_t> memory;        ///< final variable values
  std::size_t blocks_executed = 0;
  std::vector<std::size_t> block_counts;   ///< executions per block
};

/// Runs the program once from the given initial memory.
CfgExecResult run_cfg(const CfgScheduleResult& scheduled,
                      const CfgSimConfig& config,
                      std::vector<std::int64_t> initial_memory, Rng& rng);

/// Pure value semantics (no timing): the reference the simulator must
/// match. Returns final memory and per-block execution counts.
CfgExecResult interpret_cfg(const CfgProgram& cfg,
                            std::vector<std::int64_t> initial_memory,
                            std::size_t max_transfers = 1u << 20);

}  // namespace bm
