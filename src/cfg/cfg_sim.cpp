#include "cfg/cfg_sim.hpp"

#include "support/assert.hpp"

namespace bm {

namespace {

/// Shared control loop: walks blocks from the entry, calling `on_block` for
/// each executed block; the callback returns the interpreted values used
/// for branch decisions.
template <typename OnBlock>
CfgExecResult walk(const CfgProgram& cfg,
                   std::vector<std::int64_t> initial_memory,
                   std::size_t max_transfers, OnBlock&& on_block) {
  cfg.validate();
  CfgExecResult out;
  out.memory = std::move(initial_memory);
  out.memory.resize(cfg.num_vars(), 0);
  out.block_counts.assign(cfg.size(), 0);

  BlockId cur = cfg.entry();
  for (;;) {
    BM_REQUIRE(out.blocks_executed < max_transfers,
               "control-flow execution exceeded the transfer budget");
    const BasicBlock& b = cfg.block(cur);
    ++out.block_counts[cur];
    ++out.blocks_executed;

    const EvalResult eval = on_block(cur, b, out.memory);
    out.memory = eval.memory;

    switch (b.term) {
      case BasicBlock::Terminator::kExit:
        return out;
      case BasicBlock::Terminator::kJump:
        cur = b.taken;
        break;
      case BasicBlock::Terminator::kBranch:
        cur = eval.values.at(b.cond) != 0 ? b.taken : b.not_taken;
        break;
    }
  }
}

}  // namespace

CfgExecResult run_cfg(const CfgScheduleResult& scheduled,
                      const CfgSimConfig& config,
                      std::vector<std::int64_t> initial_memory, Rng& rng) {
  BM_REQUIRE(scheduled.cfg != nullptr, "unscheduled control-flow program");
  BM_REQUIRE(config.control_overhead >= 0, "negative control overhead");
  const CfgProgram& cfg = *scheduled.cfg;
  BM_REQUIRE(scheduled.blocks.size() == cfg.size(),
             "schedule does not match the program");

  Time completion = 0;
  std::size_t transfers = 0;
  // Reused across block visits (and across run_cfg calls on this thread):
  // CFG sweeps simulate hundreds of thousands of tiny block schedules, and
  // a fresh ExecTrace per visit would allocate three vectors each time.
  static thread_local ExecTrace trace;
  CfgExecResult out = walk(
      cfg, std::move(initial_memory), config.max_transfers,
      [&](BlockId id, const BasicBlock& b,
          const std::vector<std::int64_t>& memory) {
        simulate_into(*scheduled.blocks[id].result.schedule,
                      {config.machine, config.sampling}, rng, trace);
        completion += trace.completion;
        if (b.term != BasicBlock::Terminator::kExit) ++transfers;
        return eval_program(b.body, memory);
      });
  out.completion =
      completion + config.control_overhead * static_cast<Time>(transfers);
  return out;
}

CfgExecResult interpret_cfg(const CfgProgram& cfg,
                            std::vector<std::int64_t> initial_memory,
                            std::size_t max_transfers) {
  return walk(cfg, std::move(initial_memory), max_transfers,
              [](BlockId, const BasicBlock& b,
                 const std::vector<std::int64_t>& memory) {
                return eval_program(b.body, memory);
              });
}

}  // namespace bm
