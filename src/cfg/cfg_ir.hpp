// Control-flow extension (§7 "ongoing work"): programs as graphs of basic
// blocks with conditional branches and counted while-loops. Each block is
// scheduled as in the paper; a full machine rejoin at every block boundary
// resets the timing fuzziness to zero, so static scheduling applies inside
// every block regardless of the path taken — the property VLIWs cannot
// offer for data-dependent control flow.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/program.hpp"

namespace bm {

using BlockId = std::uint32_t;

struct BasicBlock {
  Program body;

  enum class Terminator : std::uint8_t {
    kExit,    ///< program ends after this block
    kJump,    ///< unconditional transfer to `taken`
    kBranch,  ///< to `taken` if the cond tuple's value != 0, else `not_taken`
  };
  Terminator term = Terminator::kExit;
  TupleId cond = kInvalidTuple;  ///< kBranch only: dense tuple id in `body`
  BlockId taken = 0;
  BlockId not_taken = 0;

  /// Static worst-case execution count (product of enclosing loop bounds);
  /// this is what a lockstep machine must provision for.
  std::size_t max_executions = 1;
};

class CfgProgram {
 public:
  explicit CfgProgram(std::uint32_t num_vars = 0) : num_vars_(num_vars) {}

  std::uint32_t num_vars() const { return num_vars_; }
  void set_num_vars(std::uint32_t n);

  std::size_t size() const { return blocks_.size(); }
  bool empty() const { return blocks_.empty(); }
  const BasicBlock& block(BlockId b) const { return blocks_.at(b); }
  BasicBlock& block(BlockId b) { return blocks_.at(b); }

  BlockId entry() const { return entry_; }
  void set_entry(BlockId b);

  BlockId append(BasicBlock block);

  /// Throws bm::Error unless every block body validates against num_vars,
  /// every target is in range, and every branch condition names a value
  /// tuple of its own body.
  void validate() const;

  /// Total instruction count across blocks.
  std::size_t total_instructions() const;

  /// Multi-line structural dump.
  std::string to_string() const;

 private:
  std::uint32_t num_vars_ = 0;
  BlockId entry_ = 0;
  std::vector<BasicBlock> blocks_;
};

}  // namespace bm
