#include "cfg/cfg_gen.hpp"

#include <optional>

#include "codegen/emitter.hpp"
#include "opt/passes.hpp"
#include "support/assert.hpp"

namespace bm {

void CfgGeneratorConfig::validate() const {
  block.validate();
  BM_REQUIRE(seq_length >= 1, "sequences need at least one construct");
  BM_REQUIRE(if_prob >= 0 && loop_prob >= 0 && if_prob + loop_prob <= 1.0,
             "construct probabilities must form a distribution");
  BM_REQUIRE(1 <= min_trip && min_trip <= max_trip, "bad trip-count range");
}

namespace {

struct Construct {
  enum class Kind { kPlain, kIf, kWhile };
  Kind kind = Kind::kPlain;
  StatementList stmts;             // plain body or if-condition prelude
  VarId aux_var = 0;               // if: condition temp; while: counter
  std::int64_t trip = 0;           // while only
  std::vector<Construct> then_seq; // if-then or while body
  std::vector<Construct> else_seq; // if-else
};

class Generator {
 public:
  Generator(const CfgGeneratorConfig& config, Rng& rng)
      : config_(config), stmt_gen_(config.block), rng_(rng),
        next_aux_(config.block.num_variables) {}

  CfgProgram run() {
    const std::vector<Construct> top = gen_seq(0);

    CfgProgram cfg(next_aux_);
    // Exit block: empty body.
    BasicBlock exit_block;
    exit_block.term = BasicBlock::Terminator::kExit;
    const BlockId exit_id = cfg_append(cfg, std::move(exit_block));
    const BlockId entry = lower_seq(cfg, top, exit_id, 1);
    cfg.set_num_vars(next_aux_);
    cfg.set_entry(entry);
    cfg.validate();
    return cfg;
  }

 private:
  std::vector<Construct> gen_seq(std::uint32_t depth) {
    std::vector<Construct> seq;
    for (std::uint32_t k = 0; k < config_.seq_length; ++k) {
      Construct c;
      const double r = rng_.uniform01();
      if (depth < config_.max_depth && r < config_.loop_prob) {
        c.kind = Construct::Kind::kWhile;
        c.aux_var = next_aux_++;
        c.trip = rng_.uniform(config_.min_trip, config_.max_trip);
        c.then_seq = gen_seq(depth + 1);
      } else if (depth < config_.max_depth &&
                 r < config_.loop_prob + config_.if_prob) {
        c.kind = Construct::Kind::kIf;
        c.aux_var = next_aux_++;
        c.stmts = stmt_gen_.generate(rng_);
        c.then_seq = gen_seq(depth + 1);
        if (rng_.chance(0.7)) c.else_seq = gen_seq(depth + 1);
      } else {
        c.kind = Construct::Kind::kPlain;
        c.stmts = stmt_gen_.generate(rng_);
      }
      seq.push_back(std::move(c));
    }
    return seq;
  }

  BlockId cfg_append(CfgProgram& cfg, BasicBlock block) {
    // Bodies may reference aux variables allocated later; sizes are
    // reconciled by set_num_vars at the end of run().
    cfg.set_num_vars(next_aux_);
    return cfg.append(std::move(block));
  }

  Program emit_block(const StatementList& stmts) {
    Program p = emit_tuples(stmts, next_aux_);
    optimize(p);
    return p;
  }

  BlockId lower_seq(CfgProgram& cfg, const std::vector<Construct>& seq,
                    BlockId cont, std::size_t mult) {
    BlockId next = cont;
    for (auto it = seq.rbegin(); it != seq.rend(); ++it)
      next = lower_construct(cfg, *it, next, mult);
    return next;
  }

  BlockId lower_construct(CfgProgram& cfg, const Construct& c, BlockId cont,
                          std::size_t mult) {
    switch (c.kind) {
      case Construct::Kind::kPlain: {
        BasicBlock b;
        b.body = emit_block(c.stmts);
        b.term = BasicBlock::Terminator::kJump;
        b.taken = cont;
        b.max_executions = mult;
        return cfg_append(cfg, std::move(b));
      }
      case Construct::Kind::kIf: {
        const BlockId then_entry = lower_seq(cfg, c.then_seq, cont, mult);
        const BlockId else_entry =
            c.else_seq.empty() ? cont : lower_seq(cfg, c.else_seq, cont, mult);
        // Condition prelude: the generated statements plus
        //   aux = x & 1;
        // whose stored value decides the branch.
        StatementList stmts = c.stmts;
        Assign cond_stmt;
        cond_stmt.lhs = c.aux_var;
        cond_stmt.op = Opcode::kAnd;
        cond_stmt.a = StmtOperand::variable(
            static_cast<VarId>(rng_.index(config_.block.num_variables)));
        cond_stmt.b = StmtOperand::constant(1);
        stmts.push_back(cond_stmt);

        BasicBlock b;
        b.body = emit_block(stmts);
        b.max_executions = mult;
        const Operand cond = last_store_value(b.body, c.aux_var);
        if (cond.is_const()) {
          // Constant-folded branch: resolved at compile time.
          b.term = BasicBlock::Terminator::kJump;
          b.taken = cond.const_value() != 0 ? then_entry : else_entry;
        } else {
          b.term = BasicBlock::Terminator::kBranch;
          b.cond = cond.tuple_id();
          b.taken = then_entry;
          b.not_taken = else_entry;
        }
        return cfg_append(cfg, std::move(b));
      }
      case Construct::Kind::kWhile: {
        // do-while with a dedicated counter:
        //   pre:   counter = trip;            jump body
        //   body:  ...                        (lowered with cont = latch)
        //   latch: counter = counter - 1;     branch body if counter != 0
        BasicBlock latch_stub;  // placeholder; filled after body lowering
        latch_stub.term = BasicBlock::Terminator::kExit;
        latch_stub.max_executions = mult * static_cast<std::size_t>(c.trip);
        const BlockId latch = cfg_append(cfg, std::move(latch_stub));

        const BlockId body_entry = lower_seq(
            cfg, c.then_seq, latch, mult * static_cast<std::size_t>(c.trip));

        BasicBlock& l = cfg.block(latch);
        Program decrement(next_aux_);
        const TupleId load =
            decrement.append(Tuple::load(0, c.aux_var));
        const TupleId sub = decrement.append(Tuple::binary(
            1, Opcode::kSub, Operand::tuple(load), Operand::constant(1)));
        decrement.append(Tuple::store(2, c.aux_var, Operand::tuple(sub)));
        l.body = std::move(decrement);
        l.term = BasicBlock::Terminator::kBranch;
        l.cond = sub;
        l.taken = body_entry;
        l.not_taken = cont;

        BasicBlock pre;
        Program init(next_aux_);
        init.append(Tuple::store(0, c.aux_var, Operand::constant(c.trip)));
        pre.body = std::move(init);
        pre.term = BasicBlock::Terminator::kJump;
        pre.taken = body_entry;
        pre.max_executions = mult;
        return cfg_append(cfg, std::move(pre));
      }
    }
    throw Error("unreachable construct kind");
  }

  /// The value operand stored by the last store to `var` in the block.
  static Operand last_store_value(const Program& body, VarId var) {
    for (std::size_t i = body.size(); i-- > 0;)
      if (body[i].is_store() && body[i].var == var) return body[i].lhs;
    throw Error("condition variable was never stored");
  }

  const CfgGeneratorConfig& config_;
  StatementGenerator stmt_gen_;
  Rng& rng_;
  VarId next_aux_;
};

}  // namespace

CfgProgram generate_cfg(const CfgGeneratorConfig& config, Rng& rng) {
  config.validate();
  Generator gen(config, rng);
  return gen.run();
}

}  // namespace bm
