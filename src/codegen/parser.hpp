// Front end for the paper's "simple language consisting of basic blocks of
// code with no control flow constructs" (§2): assignment statements over
// single-letter (or named) variables, integer literals, and the seven
// binary operators.
//
//   b = a + c;
//   d = b * 17;     # comments run to end of line
//   a = d % b;
//
// Variables are bound to ids in first-appearance order.
#pragma once

#include <string>

#include "codegen/statement.hpp"

namespace bm {

struct ParsedBlock {
  StatementList statements;
  std::uint32_t num_vars = 0;
  std::vector<std::string> var_names;  ///< id → source name
};

/// Parses a block of assignment statements. Throws bm::Error with a
/// line-numbered message on any syntax error.
ParsedBlock parse_statements(const std::string& source);

}  // namespace bm
