// Statement → tuple lowering (§2.2): the first read of a variable emits a
// Load; each assignment emits a Store; subsequent reads forward the stored
// value (value propagation), so at most one Load per variable appears.
#pragma once

#include "codegen/statement.hpp"
#include "ir/program.hpp"

namespace bm {

/// Lowers a statement list over `num_vars` variables into a tuple Program.
/// Tuple uids are assigned in emission order (matching the paper's tuple
/// numbers before optimization removes some).
Program emit_tuples(const StatementList& stmts, std::uint32_t num_vars);

}  // namespace bm
