#include "codegen/parser.hpp"

#include <cctype>
#include <map>
#include <optional>

#include "support/assert.hpp"

namespace bm {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& source) : src_(source) {}

  ParsedBlock run() {
    ParsedBlock out;
    std::map<std::string, VarId> vars;
    skip_space();
    while (!at_end()) {
      out.statements.push_back(parse_assignment(vars, out.var_names));
      skip_space();
    }
    out.num_vars = static_cast<std::uint32_t>(out.var_names.size());
    BM_REQUIRE(!out.statements.empty(), "empty program");
    return out;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw Error("parse error at line " + std::to_string(line_) + ": " + msg);
  }

  bool at_end() const { return pos_ >= src_.size(); }
  char peek() const { return at_end() ? '\0' : src_[pos_]; }
  char advance() {
    const char ch = src_[pos_++];
    if (ch == '\n') ++line_;
    return ch;
  }

  void skip_space() {
    while (!at_end()) {
      const char ch = peek();
      if (std::isspace(static_cast<unsigned char>(ch))) {
        advance();
      } else if (ch == '#') {
        while (!at_end() && peek() != '\n') advance();
      } else {
        break;
      }
    }
  }

  std::string parse_identifier() {
    skip_space();
    std::string name;
    while (!at_end() &&
           (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_'))
      name += advance();
    if (name.empty() || std::isdigit(static_cast<unsigned char>(name[0])))
      fail("expected identifier");
    return name;
  }

  std::int64_t parse_literal() {
    std::string digits;
    if (peek() == '-') digits += advance();
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())))
      digits += advance();
    if (digits.empty() || digits == "-") fail("expected integer literal");
    return std::stoll(digits);
  }

  void expect(char ch) {
    skip_space();
    if (peek() != ch) fail(std::string("expected '") + ch + "'");
    advance();
  }

  VarId intern(const std::string& name, std::map<std::string, VarId>& vars,
               std::vector<std::string>& names) {
    const auto it = vars.find(name);
    if (it != vars.end()) return it->second;
    const auto id = static_cast<VarId>(names.size());
    vars.emplace(name, id);
    names.push_back(name);
    return id;
  }

  StmtOperand parse_operand(std::map<std::string, VarId>& vars,
                            std::vector<std::string>& names) {
    skip_space();
    const char ch = peek();
    if (std::isdigit(static_cast<unsigned char>(ch)) || ch == '-')
      return StmtOperand::constant(parse_literal());
    return StmtOperand::variable(intern(parse_identifier(), vars, names));
  }

  Opcode parse_operator() {
    skip_space();
    switch (peek()) {
      case '+': advance(); return Opcode::kAdd;
      case '-': advance(); return Opcode::kSub;
      case '*': advance(); return Opcode::kMul;
      case '/': advance(); return Opcode::kDiv;
      case '%': advance(); return Opcode::kMod;
      case '&': advance(); return Opcode::kAnd;
      case '|': advance(); return Opcode::kOr;
      default: fail("expected operator (+ - * / % & |)");
    }
  }

  Assign parse_assignment(std::map<std::string, VarId>& vars,
                          std::vector<std::string>& names) {
    Assign s;
    s.lhs = intern(parse_identifier(), vars, names);
    expect('=');
    s.a = parse_operand(vars, names);
    s.op = parse_operator();
    s.b = parse_operand(vars, names);
    expect(';');
    return s;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

}  // namespace

ParsedBlock parse_statements(const std::string& source) {
  Parser parser(source);
  return parser.run();
}

}  // namespace bm
