#include "codegen/synthesize.hpp"

#include "codegen/emitter.hpp"
#include "obs/obs.hpp"

namespace bm {

SynthesisResult synthesize_benchmark(const GeneratorConfig& config, Rng& rng) {
  SynthesisResult result;
  {
    BM_OBS_SPAN(span, "codegen.generate", "codegen");
    StatementGenerator gen(config);
    result.statements = gen.generate(rng);
    result.program = emit_tuples(result.statements, config.num_variables);
  }
  {
    BM_OBS_SPAN(span, "opt.passes", "opt");
    result.opt_stats = optimize(result.program);
  }
  BM_OBS_COUNT("codegen.benchmarks");
  BM_OBS_COUNT_N("codegen.tuples_after_opt", result.program.size());
  BM_OBS_COUNT_N("opt.tuples_removed", result.opt_stats.total_removed());
  return result;
}

}  // namespace bm
