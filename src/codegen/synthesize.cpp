#include "codegen/synthesize.hpp"

#include "codegen/emitter.hpp"

namespace bm {

SynthesisResult synthesize_benchmark(const GeneratorConfig& config, Rng& rng) {
  SynthesisResult result;
  StatementGenerator gen(config);
  result.statements = gen.generate(rng);
  result.program = emit_tuples(result.statements, config.num_variables);
  result.opt_stats = optimize(result.program);
  return result;
}

}  // namespace bm
