// Source-level form of the synthetic benchmarks (§2.2): a basic block is a
// list of assignment statements `var = a OP b` over variables and constants.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/opcode.hpp"
#include "ir/tuple.hpp"

namespace bm {

/// An operand at statement level: a variable or a literal constant.
struct StmtOperand {
  enum class Kind : std::uint8_t { kVar, kConst };

  Kind kind = Kind::kVar;
  VarId var = 0;
  std::int64_t value = 0;

  static StmtOperand variable(VarId v) { return {Kind::kVar, v, 0}; }
  static StmtOperand constant(std::int64_t c) { return {Kind::kConst, 0, c}; }

  bool is_var() const { return kind == Kind::kVar; }

  bool operator==(const StmtOperand&) const = default;
};

/// `lhs = a op b`
struct Assign {
  VarId lhs = 0;
  Opcode op = Opcode::kAdd;
  StmtOperand a;
  StmtOperand b;
};

using StatementList = std::vector<Assign>;

std::string statement_to_string(const Assign& s);

}  // namespace bm
