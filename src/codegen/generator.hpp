// Random basic-block generator (§2.2). Draws assignment statements whose
// operation mix follows Table 1's Alexander–Wortman frequencies; operands are
// drawn uniformly from the variable and constant pools.
#pragma once

#include <cstdint>
#include <vector>

#include "codegen/statement.hpp"
#include "support/rng.hpp"

namespace bm {

struct GeneratorConfig {
  std::uint32_t num_statements = 20;
  std::uint32_t num_variables = 8;   ///< ≈ parallelism width after opt (§2.2)
  std::uint32_t num_constants = 4;   ///< size of the literal pool

  /// Probability that an operand is a literal rather than a variable.
  /// Kept small (real instruction mixes are variable-dominated); large
  /// values make constant folding collapse whole blocks, which would skew
  /// the scheduling statistics the way §2.2 warns about.
  double const_operand_prob = 0.15;

  /// Constant literal values are drawn from [1, const_max]; zero is excluded
  /// so folded divisions stay defined.
  std::int64_t const_max = 64;

  void validate() const;  ///< throws bm::Error on nonsense parameters
};

class StatementGenerator {
 public:
  explicit StatementGenerator(GeneratorConfig config);

  /// Generates one benchmark's statement list; consumes draws from rng.
  StatementList generate(Rng& rng) const;

  const GeneratorConfig& config() const { return config_; }

 private:
  GeneratorConfig config_;
  std::vector<Opcode> ops_;       ///< binary opcodes, enum order
  std::vector<double> weights_;   ///< Table-1 frequencies for ops_
};

}  // namespace bm
