#include "codegen/emitter.hpp"

#include <optional>
#include <vector>

#include "support/assert.hpp"

namespace bm {

Program emit_tuples(const StatementList& stmts, std::uint32_t num_vars) {
  Program prog(num_vars);
  // Current value of each variable, once known (load or assignment).
  std::vector<std::optional<Operand>> value(num_vars);
  std::uint32_t next_uid = 0;

  auto read = [&](const StmtOperand& o) -> Operand {
    if (!o.is_var()) return Operand::constant(o.value);
    BM_REQUIRE(o.var < num_vars, "statement references unknown variable");
    if (!value[o.var]) {
      const TupleId id = prog.append(Tuple::load(next_uid++, o.var));
      value[o.var] = Operand::tuple(id);
    }
    return *value[o.var];
  };

  for (const Assign& s : stmts) {
    BM_REQUIRE(s.lhs < num_vars, "statement assigns unknown variable");
    const Operand a = read(s.a);
    const Operand b = read(s.b);
    const TupleId result =
        prog.append(Tuple::binary(next_uid++, s.op, a, b));
    prog.append(Tuple::store(next_uid++, s.lhs, Operand::tuple(result)));
    value[s.lhs] = Operand::tuple(result);
  }
  return prog;
}

}  // namespace bm
