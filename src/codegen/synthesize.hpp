// One-call benchmark synthesis: generate statements, lower to tuples, and
// run the local optimizer — the full §2.2 pipeline.
#pragma once

#include "codegen/generator.hpp"
#include "ir/program.hpp"
#include "opt/passes.hpp"

namespace bm {

struct SynthesisResult {
  StatementList statements;  ///< the source-level block
  Program program;           ///< optimized tuple program
  OptStats opt_stats;
};

/// Generates and optimizes one synthetic benchmark.
SynthesisResult synthesize_benchmark(const GeneratorConfig& config, Rng& rng);

}  // namespace bm
