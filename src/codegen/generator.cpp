#include "codegen/generator.hpp"

#include "support/assert.hpp"

namespace bm {

void GeneratorConfig::validate() const {
  BM_REQUIRE(num_statements > 0, "need at least one statement");
  BM_REQUIRE(num_variables > 0, "need at least one variable");
  BM_REQUIRE(const_max >= 1, "const_max must be >= 1");
  BM_REQUIRE(const_operand_prob >= 0.0 && const_operand_prob <= 1.0,
             "const_operand_prob must be a probability");
}

StatementGenerator::StatementGenerator(GeneratorConfig config)
    : config_(config) {
  config_.validate();
  for (Opcode op : all_opcodes()) {
    if (!is_binary_op(op)) continue;
    ops_.push_back(op);
    weights_.push_back(opcode_frequency_percent(op));
  }
}

StatementList StatementGenerator::generate(Rng& rng) const {
  // Fix the literal pool for this benchmark instance.
  std::vector<std::int64_t> constants(config_.num_constants);
  for (auto& c : constants) c = rng.uniform(1, config_.const_max);

  auto draw_operand = [&]() -> StmtOperand {
    if (!constants.empty() && rng.chance(config_.const_operand_prob))
      return StmtOperand::constant(constants[rng.index(constants.size())]);
    return StmtOperand::variable(
        static_cast<VarId>(rng.index(config_.num_variables)));
  };

  StatementList stmts;
  stmts.reserve(config_.num_statements);
  for (std::uint32_t i = 0; i < config_.num_statements; ++i) {
    Assign s;
    s.lhs = static_cast<VarId>(rng.index(config_.num_variables));
    s.op = ops_[rng.weighted(weights_)];
    s.a = draw_operand();
    s.b = draw_operand();
    stmts.push_back(s);
  }
  return stmts;
}

}  // namespace bm
