#include "codegen/statement.hpp"

#include <sstream>

namespace bm {

namespace {
std::string operand_str(const StmtOperand& o) {
  return o.is_var() ? var_name(o.var) : std::to_string(o.value);
}

std::string_view op_symbol(Opcode op) {
  switch (op) {
    case Opcode::kAdd: return "+";
    case Opcode::kSub: return "-";
    case Opcode::kAnd: return "&";
    case Opcode::kOr: return "|";
    case Opcode::kMul: return "*";
    case Opcode::kDiv: return "/";
    case Opcode::kMod: return "%";
    default: return "?";
  }
}
}  // namespace

std::string statement_to_string(const Assign& s) {
  std::ostringstream os;
  os << var_name(s.lhs) << " = " << operand_str(s.a) << ' ' << op_symbol(s.op)
     << ' ' << operand_str(s.b) << ';';
  return os.str();
}

}  // namespace bm
