// VLIW baseline (§6): lockstep list scheduling of the same instruction DAG
// with every instruction pinned to its maximum execution time and no
// asynchrony. Completion time is deterministic — the normalization basis of
// Fig. 18.
#pragma once

#include <vector>

#include "graph/instr_dag.hpp"
#include "sched/policies.hpp"

namespace bm {

struct VliwSlot {
  NodeId node = kInvalidNode;
  Time start = 0;
  Time finish = 0;
  std::uint32_t proc = 0;
};

struct VliwSchedule {
  std::vector<VliwSlot> slots;      ///< one per instruction, node-indexed
  Time makespan = 0;                ///< completion time (max times)
  std::size_t procs_used = 0;
};

/// Greedy list scheduling (same h_max-then-h_min priorities as the barrier
/// scheduler): each node starts at the earliest cycle where all producers
/// have finished and some functional unit is free.
VliwSchedule schedule_vliw(const InstrDag& dag, std::size_t num_procs,
                           OrderingPolicy ordering = OrderingPolicy::kMaxThenMin);

}  // namespace bm
