#include "vliw/vliw.hpp"

#include <algorithm>

#include "sched/labels.hpp"
#include "support/assert.hpp"

namespace bm {

VliwSchedule schedule_vliw(const InstrDag& dag, std::size_t num_procs,
                           OrderingPolicy ordering) {
  BM_REQUIRE(num_procs >= 1, "need at least one functional unit");
  VliwSchedule out;
  out.slots.assign(dag.num_instructions(), VliwSlot{});

  std::vector<Time> unit_free(num_procs, 0);
  std::vector<bool> unit_used(num_procs, false);

  for (NodeId node : make_list_order(dag, ordering)) {
    Time ready = 0;
    for (NodeId p : dag.preds(node))
      if (!dag.is_dummy(p)) ready = std::max(ready, out.slots[p].finish);

    // Earliest-available unit at or after `ready`; prefer the unit that
    // frees first (deterministic: lowest index wins ties).
    std::size_t best = 0;
    Time best_start = std::max(ready, unit_free[0]);
    for (std::size_t u = 1; u < num_procs; ++u) {
      const Time start = std::max(ready, unit_free[u]);
      if (start < best_start) {
        best = u;
        best_start = start;
      }
    }
    VliwSlot& slot = out.slots[node];
    slot.node = node;
    slot.proc = static_cast<std::uint32_t>(best);
    slot.start = best_start;
    slot.finish = best_start + dag.time(node).max;
    unit_free[best] = slot.finish;
    unit_used[best] = true;
    out.makespan = std::max(out.makespan, slot.finish);
  }
  out.procs_used = static_cast<std::size_t>(
      std::count(unit_used.begin(), unit_used.end(), true));
  return out;
}

}  // namespace bm
