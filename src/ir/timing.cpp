#include "ir/timing.hpp"

#include <cmath>
#include <sstream>

#include "support/assert.hpp"

namespace bm {

std::string TimeRange::to_string() const {
  std::ostringstream os;
  os << '[' << min << ',' << max << ']';
  return os.str();
}

TimingModel TimingModel::table1() {
  TimingModel m;
  m.set(Opcode::kLoad, {1, 4});
  m.set(Opcode::kStore, {1, 1});
  m.set(Opcode::kAdd, {1, 1});
  m.set(Opcode::kSub, {1, 1});
  m.set(Opcode::kAnd, {1, 1});
  m.set(Opcode::kOr, {1, 1});
  m.set(Opcode::kMul, {16, 24});
  m.set(Opcode::kDiv, {24, 32});
  m.set(Opcode::kMod, {24, 32});
  return m;
}

TimingModel TimingModel::table1_with_variation(double factor) {
  BM_REQUIRE(factor >= 0.0, "variation factor must be >= 0");
  TimingModel m = table1();
  for (Opcode op : all_opcodes()) {
    const TimeRange r = m.range(op);
    const auto new_width =
        static_cast<Time>(std::llround(static_cast<double>(r.width()) * factor));
    m.set(op, {r.min, r.min + new_width});
  }
  return m;
}

TimingModel TimingModel::table1_all_max() {
  TimingModel m = table1();
  for (Opcode op : all_opcodes()) {
    const TimeRange r = m.range(op);
    m.set(op, TimeRange::fixed(r.max));
  }
  return m;
}

const TimeRange& TimingModel::range(Opcode op) const {
  return ranges_[static_cast<std::size_t>(op)];
}

void TimingModel::set(Opcode op, TimeRange r) {
  BM_REQUIRE(r.valid() && r.min >= 0, "invalid time range");
  ranges_[static_cast<std::size_t>(op)] = r;
}

bool TimingModel::is_deterministic() const {
  for (Opcode op : all_opcodes())
    if (!range(op).is_fixed()) return false;
  return true;
}

}  // namespace bm
