// The nine-instruction benchmark instruction set of the paper (§2.1,
// Table 1), with execution-frequency data used by the synthetic generator.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace bm {

enum class Opcode : std::uint8_t {
  kLoad = 0,
  kStore,
  kAdd,
  kSub,
  kAnd,
  kOr,
  kMul,
  kDiv,
  kMod,
};

inline constexpr std::size_t kNumOpcodes = 9;

/// All opcodes, in enum order.
constexpr std::array<Opcode, kNumOpcodes> all_opcodes() {
  return {Opcode::kLoad, Opcode::kStore, Opcode::kAdd,
          Opcode::kSub,  Opcode::kAnd,   Opcode::kOr,
          Opcode::kMul,  Opcode::kDiv,   Opcode::kMod};
}

std::string_view opcode_name(Opcode op);

/// True for Add/Sub/And/Or/Mul/Div/Mod — the operations the generator draws
/// for assignment statements. Load/Store are synthesized on demand (§2.2).
bool is_binary_op(Opcode op);

/// Table 1 execution frequencies for the binary operations, in percent
/// (Add 45.8, Sub 33.9, And 8.8, Or 5.2, Mul 2.9, Div 2.2, Mod 1.2).
/// Returns 0 for Load/Store.
double opcode_frequency_percent(Opcode op);

/// Applies `op` to constant operands (constant folding). Division/modulo by
/// zero folds to 0, mirroring a compiler that traps to a defined value; the
/// generator never emits a constant zero divisor anyway.
std::int64_t fold_binary(Opcode op, std::int64_t lhs, std::int64_t rhs);

/// True if the operation is commutative (used by CSE canonicalization).
bool is_commutative(Opcode op);

}  // namespace bm
