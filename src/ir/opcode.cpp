#include "ir/opcode.hpp"

#include "support/assert.hpp"

namespace bm {

std::string_view opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kLoad: return "Load";
    case Opcode::kStore: return "Store";
    case Opcode::kAdd: return "Add";
    case Opcode::kSub: return "Sub";
    case Opcode::kAnd: return "And";
    case Opcode::kOr: return "Or";
    case Opcode::kMul: return "Mul";
    case Opcode::kDiv: return "Div";
    case Opcode::kMod: return "Mod";
  }
  return "?";
}

bool is_binary_op(Opcode op) {
  return op != Opcode::kLoad && op != Opcode::kStore;
}

double opcode_frequency_percent(Opcode op) {
  switch (op) {
    case Opcode::kAdd: return 45.8;
    case Opcode::kSub: return 33.9;
    case Opcode::kAnd: return 8.8;
    case Opcode::kOr: return 5.2;
    case Opcode::kMul: return 2.9;
    case Opcode::kDiv: return 2.2;
    case Opcode::kMod: return 1.2;
    case Opcode::kLoad:
    case Opcode::kStore: return 0.0;
  }
  return 0.0;
}

std::int64_t fold_binary(Opcode op, std::int64_t lhs, std::int64_t rhs) {
  switch (op) {
    case Opcode::kAdd: return lhs + rhs;
    case Opcode::kSub: return lhs - rhs;
    case Opcode::kAnd: return lhs & rhs;
    case Opcode::kOr: return lhs | rhs;
    case Opcode::kMul: return lhs * rhs;
    case Opcode::kDiv: return rhs == 0 ? 0 : lhs / rhs;
    case Opcode::kMod: return rhs == 0 ? 0 : lhs % rhs;
    case Opcode::kLoad:
    case Opcode::kStore: break;
  }
  throw Error("fold_binary on non-binary opcode");
}

bool is_commutative(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kMul: return true;
    default: return false;
  }
}

}  // namespace bm
