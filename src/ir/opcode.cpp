#include "ir/opcode.hpp"

#include <limits>

#include "support/assert.hpp"

namespace bm {

std::string_view opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kLoad: return "Load";
    case Opcode::kStore: return "Store";
    case Opcode::kAdd: return "Add";
    case Opcode::kSub: return "Sub";
    case Opcode::kAnd: return "And";
    case Opcode::kOr: return "Or";
    case Opcode::kMul: return "Mul";
    case Opcode::kDiv: return "Div";
    case Opcode::kMod: return "Mod";
  }
  return "?";
}

bool is_binary_op(Opcode op) {
  return op != Opcode::kLoad && op != Opcode::kStore;
}

double opcode_frequency_percent(Opcode op) {
  switch (op) {
    case Opcode::kAdd: return 45.8;
    case Opcode::kSub: return 33.9;
    case Opcode::kAnd: return 8.8;
    case Opcode::kOr: return 5.2;
    case Opcode::kMul: return 2.9;
    case Opcode::kDiv: return 2.2;
    case Opcode::kMod: return 1.2;
    case Opcode::kLoad:
    case Opcode::kStore: return 0.0;
  }
  return 0.0;
}

std::int64_t fold_binary(Opcode op, std::int64_t lhs, std::int64_t rhs) {
  // Synthesized blocks fold arbitrary constants, so Add/Sub/Mul must wrap
  // (two's complement) rather than hit signed-overflow UB; C++20 guarantees
  // the unsigned round-trip is exactly that wrap. Div/Mod additionally
  // guard INT64_MIN / -1, whose quotient is unrepresentable.
  const auto ul = static_cast<std::uint64_t>(lhs);
  const auto ur = static_cast<std::uint64_t>(rhs);
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  switch (op) {
    case Opcode::kAdd: return static_cast<std::int64_t>(ul + ur);
    case Opcode::kSub: return static_cast<std::int64_t>(ul - ur);
    case Opcode::kAnd: return lhs & rhs;
    case Opcode::kOr: return lhs | rhs;
    case Opcode::kMul: return static_cast<std::int64_t>(ul * ur);
    case Opcode::kDiv:
      if (rhs == 0) return 0;
      return lhs == kMin && rhs == -1 ? kMin : lhs / rhs;
    case Opcode::kMod:
      if (rhs == 0) return 0;
      return lhs == kMin && rhs == -1 ? 0 : lhs % rhs;
    case Opcode::kLoad:
    case Opcode::kStore: break;
  }
  throw Error("fold_binary on non-binary opcode");
}

bool is_commutative(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kMul: return true;
    default: return false;
  }
}

}  // namespace bm
