// Execution-time model: per-instruction [min,max] ranges (Table 1) and the
// interval arithmetic the scheduler's static analysis is built on.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "ir/opcode.hpp"

namespace bm {

using Time = std::int64_t;

/// Closed integral interval [min,max] of possible execution times.
struct TimeRange {
  Time min = 0;
  Time max = 0;

  constexpr TimeRange() = default;
  constexpr TimeRange(Time mn, Time mx) : min(mn), max(mx) {}
  static constexpr TimeRange fixed(Time t) { return {t, t}; }

  constexpr bool valid() const { return 0 <= min && min <= max; }
  constexpr Time width() const { return max - min; }
  constexpr bool is_fixed() const { return min == max; }

  /// Sequential composition: this code followed by other.
  constexpr TimeRange operator+(const TimeRange& o) const {
    return {min + o.min, max + o.max};
  }
  TimeRange& operator+=(const TimeRange& o) {
    min += o.min;
    max += o.max;
    return *this;
  }

  /// Barrier-join composition (Fig. 13 rule): no processor proceeds until all
  /// arrive, so both bounds combine by max.
  constexpr TimeRange join_max(const TimeRange& o) const {
    return {min > o.min ? min : o.min, max > o.max ? max : o.max};
  }

  /// True if the two ranges share at least one instant (used by barrier
  /// merging, §4.4.3).
  constexpr bool overlaps(const TimeRange& o) const {
    return min <= o.max && o.min <= max;
  }

  constexpr bool contains(Time t) const { return min <= t && t <= max; }

  constexpr bool operator==(const TimeRange& o) const = default;

  std::string to_string() const;
};

/// Maps opcodes to execution-time ranges. The default is Table 1; the
/// variation scale (§5.4) and fully custom models are supported.
class TimingModel {
 public:
  /// Table 1: Load [1,4], Store/Add/Sub/And/Or [1,1], Mul [16,24],
  /// Div [24,32], Mod [24,32].
  static TimingModel table1();

  /// Table 1 with every variable range's width multiplied by `factor`
  /// (min preserved, max = min + width*factor, at least min). Models the
  /// "very large timing variations" experiment of §5.4.
  static TimingModel table1_with_variation(double factor);

  /// All instructions pinned to their Table-1 maximum — the VLIW assumption
  /// of §6.
  static TimingModel table1_all_max();

  TimingModel() = default;  // all zero; set() every opcode before use

  const TimeRange& range(Opcode op) const;
  void set(Opcode op, TimeRange r);

  /// True if no opcode has a variable execution time.
  bool is_deterministic() const;

 private:
  std::array<TimeRange, kNumOpcodes> ranges_{};
};

}  // namespace bm
