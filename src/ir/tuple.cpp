#include "ir/tuple.hpp"

#include <sstream>

#include "support/assert.hpp"

namespace bm {

TupleId Operand::tuple_id() const {
  BM_REQUIRE(is_tuple(), "operand is not a tuple reference");
  return static_cast<TupleId>(value);
}

std::int64_t Operand::const_value() const {
  BM_REQUIRE(is_const(), "operand is not a constant");
  return value;
}

Tuple Tuple::load(std::uint32_t uid, VarId var) {
  Tuple t;
  t.uid = uid;
  t.op = Opcode::kLoad;
  t.var = var;
  return t;
}

Tuple Tuple::store(std::uint32_t uid, VarId var, Operand value) {
  Tuple t;
  t.uid = uid;
  t.op = Opcode::kStore;
  t.var = var;
  t.lhs = value;
  return t;
}

Tuple Tuple::binary(std::uint32_t uid, Opcode op, Operand lhs, Operand rhs) {
  BM_REQUIRE(is_binary_op(op), "binary() requires a binary opcode");
  Tuple t;
  t.uid = uid;
  t.op = op;
  t.lhs = lhs;
  t.rhs = rhs;
  return t;
}

int Tuple::operand_count() const {
  if (is_load()) return 0;
  if (is_store()) return 1;
  return 2;
}

const Operand& Tuple::operand(int i) const {
  BM_REQUIRE(i >= 0 && i < operand_count(), "operand index out of range");
  return i == 0 ? lhs : rhs;
}

Operand& Tuple::operand(int i) {
  BM_REQUIRE(i >= 0 && i < operand_count(), "operand index out of range");
  return i == 0 ? lhs : rhs;
}

std::string var_name(VarId v) {
  if (v < 26) return std::string(1, static_cast<char>('a' + v));
  std::ostringstream os;
  os << 'v' << v;
  return os.str();
}

namespace {
std::string operand_str(const Operand& o) {
  if (o.is_const()) return "#" + std::to_string(o.const_value());
  return std::to_string(o.tuple_id());
}
}  // namespace

std::string tuple_to_string(const Tuple& t) {
  std::ostringstream os;
  os << opcode_name(t.op) << ' ';
  if (t.is_load()) {
    os << var_name(t.var);
  } else if (t.is_store()) {
    os << var_name(t.var) << ',' << operand_str(t.lhs);
  } else {
    os << operand_str(t.lhs) << ',' << operand_str(t.rhs);
  }
  return os.str();
}

}  // namespace bm
