// Program: an optimized basic block of tuples in definition order (§2).
//
// Invariant: every tuple operand that references a tuple refers to an
// *earlier* index, so the sequence is a valid topological order of the
// dataflow — validate() checks this plus load/store well-formedness.
#pragma once

#include <string>
#include <vector>

#include "ir/timing.hpp"
#include "ir/tuple.hpp"

namespace bm {

class Program {
 public:
  Program() = default;
  explicit Program(std::uint32_t num_vars) : num_vars_(num_vars) {}

  std::uint32_t num_vars() const { return num_vars_; }
  void set_num_vars(std::uint32_t n) { num_vars_ = n; }

  /// Optional display name for a variable (defaults to var_name(v): a, b,
  /// c, ...). Used by listings only.
  void set_var_name(VarId v, std::string name);
  std::string var_display_name(VarId v) const;

  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const Tuple& operator[](std::size_t i) const { return tuples_[i]; }
  Tuple& operator[](std::size_t i) { return tuples_[i]; }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Appends a tuple and returns its dense id. Operand references are
  /// checked against already-present tuples.
  TupleId append(Tuple t);

  /// Replaces the tuple list wholesale (used by optimizer passes); callers
  /// must re-establish the ordering invariant — validate() enforces it.
  void replace_all(std::vector<Tuple> tuples);

  /// Throws bm::Error if any invariant is violated:
  ///  - tuple operands reference earlier tuples only,
  ///  - Load/Store variables are < num_vars,
  ///  - Store value operands exist.
  void validate() const;

  /// Total execution-time range of the block if run serially.
  TimeRange serial_time(const TimingModel& tm) const;

  /// Fig. 1-style listing: uid, instruction, ASAP min/max finish columns
  /// when `asap` has size() entries (pass {} to omit).
  std::string to_string(const std::vector<TimeRange>& asap = {}) const;

 private:
  std::uint32_t num_vars_ = 0;
  std::vector<Tuple> tuples_;
  std::vector<std::string> var_names_;  ///< sparse; "" = default name
};

}  // namespace bm
