// Tuple IR: the three-address form the synthetic compiler emits (Fig. 1).
//
// A tuple is one instruction. Loads name a variable; stores name a variable
// and a value operand; binary operations take two value operands. Value
// operands reference earlier tuples or immediate constants.
#pragma once

#include <cstdint>
#include <string>

#include "ir/opcode.hpp"

namespace bm {

using TupleId = std::uint32_t;  ///< dense index into Program
using VarId = std::uint32_t;

inline constexpr TupleId kInvalidTuple = ~TupleId{0};

/// A value operand: either the result of a prior tuple or an immediate.
struct Operand {
  enum class Kind : std::uint8_t { kTuple, kConst };

  Kind kind = Kind::kConst;
  std::int64_t value = 0;  ///< TupleId when kTuple, constant value otherwise

  static Operand tuple(TupleId id) {
    return {Kind::kTuple, static_cast<std::int64_t>(id)};
  }
  static Operand constant(std::int64_t v) { return {Kind::kConst, v}; }

  bool is_tuple() const { return kind == Kind::kTuple; }
  bool is_const() const { return kind == Kind::kConst; }
  TupleId tuple_id() const;
  std::int64_t const_value() const;

  bool operator==(const Operand& o) const = default;
};

struct Tuple {
  /// Stable identifier assigned at creation; survives optimization (the paper
  /// prints these, with gaps where the optimizer removed tuples).
  std::uint32_t uid = 0;
  Opcode op = Opcode::kAdd;
  VarId var = 0;       ///< Load/Store only: the variable accessed
  Operand lhs;         ///< binary ops: first operand; Store: value stored
  Operand rhs;         ///< binary ops only: second operand

  static Tuple load(std::uint32_t uid, VarId var);
  static Tuple store(std::uint32_t uid, VarId var, Operand value);
  static Tuple binary(std::uint32_t uid, Opcode op, Operand lhs, Operand rhs);

  bool is_load() const { return op == Opcode::kLoad; }
  bool is_store() const { return op == Opcode::kStore; }
  bool is_binary() const { return is_binary_op(op); }

  /// Number of value operands (0 for Load, 1 for Store, 2 for binary).
  int operand_count() const;
  /// The i-th value operand; i < operand_count().
  const Operand& operand(int i) const;
  Operand& operand(int i);
};

/// Human-readable variable name: a, b, ..., z, v26, v27, ...
std::string var_name(VarId v);

/// Renders a tuple like "Store g,38" / "Add 12,30" / "Load d" / "Add 4,#3".
std::string tuple_to_string(const Tuple& t);

}  // namespace bm
