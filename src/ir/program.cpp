#include "ir/program.hpp"

#include <iomanip>
#include <sstream>

#include "support/assert.hpp"

namespace bm {

void Program::set_var_name(VarId v, std::string name) {
  BM_REQUIRE(v < num_vars_, "variable id out of range");
  BM_REQUIRE(!name.empty(), "variable name must be non-empty");
  if (var_names_.size() < num_vars_) var_names_.resize(num_vars_);
  var_names_[v] = std::move(name);
}

std::string Program::var_display_name(VarId v) const {
  BM_REQUIRE(v < num_vars_, "variable id out of range");
  if (v < var_names_.size() && !var_names_[v].empty()) return var_names_[v];
  return var_name(v);
}

TupleId Program::append(Tuple t) {
  const auto id = static_cast<TupleId>(tuples_.size());
  for (int i = 0; i < t.operand_count(); ++i) {
    const Operand& o = t.operand(i);
    BM_REQUIRE(!o.is_tuple() || o.tuple_id() < id,
               "operand must reference an earlier tuple");
  }
  if (t.is_load() || t.is_store())
    BM_REQUIRE(t.var < num_vars_, "variable id out of range");
  tuples_.push_back(t);
  return id;
}

void Program::replace_all(std::vector<Tuple> tuples) {
  tuples_ = std::move(tuples);
}

void Program::validate() const {
  for (std::size_t i = 0; i < tuples_.size(); ++i) {
    const Tuple& t = tuples_[i];
    for (int k = 0; k < t.operand_count(); ++k) {
      const Operand& o = t.operand(k);
      if (o.is_tuple())
        BM_REQUIRE(o.tuple_id() < i, "forward operand reference");
    }
    if (t.is_load() || t.is_store())
      BM_REQUIRE(t.var < num_vars_, "variable id out of range");
  }
}

TimeRange Program::serial_time(const TimingModel& tm) const {
  TimeRange total{0, 0};
  for (const Tuple& t : tuples_) total += tm.range(t.op);
  return total;
}

std::string Program::to_string(const std::vector<TimeRange>& asap) const {
  BM_REQUIRE(asap.empty() || asap.size() == tuples_.size(),
             "asap column size mismatch");
  std::ostringstream os;
  auto operand_str = [&](const Operand& o) {
    // Tuple references render by uid so they match the left column (the
    // paper's tuple numbers survive optimization with gaps).
    if (o.is_const()) return "#" + std::to_string(o.const_value());
    return std::to_string(tuples_[o.tuple_id()].uid);
  };
  auto render = [&](const Tuple& t) {
    std::ostringstream ts;
    ts << opcode_name(t.op) << ' ';
    if (t.is_load())
      ts << var_display_name(t.var);
    else if (t.is_store())
      ts << var_display_name(t.var) << ',' << operand_str(t.lhs);
    else
      ts << operand_str(t.lhs) << ',' << operand_str(t.rhs);
    return ts.str();
  };
  for (std::size_t i = 0; i < tuples_.size(); ++i) {
    os << std::setw(4) << tuples_[i].uid << "  " << std::left << std::setw(16)
       << render(tuples_[i]) << std::right;
    if (!asap.empty())
      os << std::setw(5) << asap[i].min << std::setw(5) << asap[i].max;
    os << '\n';
  }
  return os.str();
}

}  // namespace bm
