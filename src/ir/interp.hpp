// Reference interpreter for tuple programs: value semantics only (no
// timing). Used by the control-flow simulator to evaluate branch conditions
// and by tests to prove the optimizer preserves meaning.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/program.hpp"

namespace bm {

struct EvalResult {
  std::vector<std::int64_t> memory;  ///< final variable values
  std::vector<std::int64_t> values;  ///< per-tuple result values
};

/// Executes the block with the given initial memory (resized/zero-extended
/// to num_vars). Division and modulo by zero yield 0, matching
/// fold_binary.
EvalResult eval_program(const Program& prog,
                        std::vector<std::int64_t> initial_memory);

}  // namespace bm
