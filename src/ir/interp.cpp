#include "ir/interp.hpp"

namespace bm {

EvalResult eval_program(const Program& prog,
                        std::vector<std::int64_t> initial_memory) {
  EvalResult result;
  result.memory = std::move(initial_memory);
  result.memory.resize(prog.num_vars(), 0);
  result.values.assign(prog.size(), 0);

  auto operand_value = [&](const Operand& o) {
    return o.is_const() ? o.const_value() : result.values[o.tuple_id()];
  };
  for (std::size_t i = 0; i < prog.size(); ++i) {
    const Tuple& t = prog[i];
    if (t.is_load())
      result.values[i] = result.memory[t.var];
    else if (t.is_store())
      result.memory[t.var] = operand_value(t.lhs);
    else
      result.values[i] =
          fold_binary(t.op, operand_value(t.lhs), operand_value(t.rhs));
  }
  return result;
}

}  // namespace bm
