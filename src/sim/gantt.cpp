#include "sim/gantt.hpp"

#include <algorithm>
#include <sstream>

#include "support/assert.hpp"

namespace bm {

std::string render_gantt(const Schedule& sched, const ExecTrace& trace,
                         const GanttOptions& options) {
  BM_REQUIRE(options.max_width >= 10, "gantt needs at least 10 columns");
  const Time span = std::max<Time>(trace.completion, 1);
  const double scale =
      static_cast<double>(options.max_width) / static_cast<double>(span);
  auto col = [&](Time t) {
    const auto c = static_cast<std::size_t>(static_cast<double>(t) * scale);
    return std::min(c, options.max_width);
  };

  std::ostringstream os;
  for (ProcId p = 0; p < sched.num_procs(); ++p) {
    if (sched.stream(p).empty()) continue;
    std::string row(options.max_width + 1, ' ');
    for (const ScheduleEntry& e : sched.stream(p)) {
      if (e.is_barrier) {
        const Time fire = trace.barrier_fire.at(e.id);
        if (fire != kNotExecuted) row[col(fire)] = '|';
        continue;
      }
      const Time start = trace.start.at(e.id);
      const Time finish = trace.finish.at(e.id);
      if (start == kNotExecuted) continue;
      const std::size_t from = col(start);
      const std::size_t to = std::max(col(finish), from + 1);
      // Fill the span, then stamp the label over the leading cells.
      for (std::size_t c = from; c < to && c < row.size(); ++c) row[c] = '=';
      const std::string label = "n" + std::to_string(e.id);
      for (std::size_t k = 0; k < label.size() && from + k < to; ++k)
        row[from + k] = label[k];
    }
    os << 'P' << p << (p < 10 ? " " : "") << '[' << row << "]\n";
  }
  if (options.show_axis) {
    os << "t=0" << std::string(options.max_width > 10 ? options.max_width - 7 : 0, ' ')
       << "t=" << span << '\n';
  }
  return os.str();
}

}  // namespace bm
