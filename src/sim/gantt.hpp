// ASCII Gantt rendering of an execution trace: one row per processor, time
// flowing right, instructions as labeled spans and barrier fires as '|'.
#pragma once

#include <string>

#include "sched/schedule.hpp"
#include "sim/trace.hpp"

namespace bm {

struct GanttOptions {
  std::size_t max_width = 100;  ///< columns available for the time axis
  bool show_axis = true;
};

/// Renders the trace of `sched`'s execution. Instructions are drawn as
/// `[n12======]` spans scaled to their duration; barrier fire instants as
/// '|'. Rows are processors in id order; idle time is blank.
std::string render_gantt(const Schedule& sched, const ExecTrace& trace,
                         const GanttOptions& options = {});

}  // namespace bm
