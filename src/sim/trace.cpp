#include "sim/trace.hpp"

namespace bm {

std::vector<std::pair<NodeId, NodeId>> find_violations(
    const InstrDag& dag, const ExecTrace& trace) {
  std::vector<std::pair<NodeId, NodeId>> out;
  for (const auto& [g, i] : dag.sync_edges()) {
    if (trace.finish.at(g) == kNotExecuted || trace.start.at(i) == kNotExecuted)
      continue;
    if (trace.finish[g] > trace.start[i]) out.emplace_back(g, i);
  }
  return out;
}

}  // namespace bm
