// Value-accurate simulation: attach data values to a timing trace.
//
// The discrete-event simulators (sim/simulator.hpp) model *when* things
// happen; this layer models *what* they compute. simulate_values() replays
// the instructions in the trace's observed execution order — ascending
// start time, ties broken by node id — applying the reference value
// semantics (ir/opcode fold_binary: wrap on Add/Sub/Mul, guarded Div/Mod),
// and returns the final variable memory and per-tuple values.
//
// For a schedule that passes the static verifier the result is independent
// of the draw (any trace order consistent with the barriers computes the
// same state, equal to the order-independent oracle ir/interp
// eval_program) — which is exactly what the native execution backend's
// differential tests assert against real threads.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/program.hpp"
#include "sched/schedule.hpp"
#include "sim/trace.hpp"

namespace bm {

struct ValueSimResult {
  std::vector<std::int64_t> memory;  ///< final variables [num_vars]
  std::vector<std::int64_t> values;  ///< per-tuple results [prog.size()]
};

/// Replays `trace` (produced by simulate/simulate_into over `sched`, which
/// was built over `prog`) in observed start order. `initial_memory` is
/// zero-padded to prog.num_vars(). Throws bm::Error if the trace and
/// program disagree in shape or any instruction never executed.
ValueSimResult simulate_values(const Program& prog, const Schedule& sched,
                               const ExecTrace& trace,
                               const std::vector<std::int64_t>&
                                   initial_memory = {});

}  // namespace bm
