#include "sim/analysis.hpp"

#include "support/assert.hpp"

namespace bm {

double TraceAnalysis::machine_utilization() const {
  Time denom = 0, busy = 0;
  for (const ProcUtilization& p : procs) {
    if (!p.used) continue;
    denom += completion;
    busy += p.busy;
  }
  return denom == 0 ? 0.0
                    : static_cast<double>(busy) / static_cast<double>(denom);
}

double TraceAnalysis::wait_fraction() const {
  Time denom = 0, wait = 0;
  for (const ProcUtilization& p : procs) {
    if (!p.used) continue;
    denom += p.total();
    wait += p.barrier_wait;
  }
  return denom == 0 ? 0.0
                    : static_cast<double>(wait) / static_cast<double>(denom);
}

TraceAnalysis analyze_trace(const Schedule& sched, const ExecTrace& trace) {
  TraceAnalysis out;
  out.completion = trace.completion;
  out.procs.resize(sched.num_procs());

  for (ProcId p = 0; p < sched.num_procs(); ++p) {
    ProcUtilization& u = out.procs[p];
    Time cursor = 0;  // the processor's current instant
    for (const ScheduleEntry& e : sched.stream(p)) {
      if (e.is_barrier) {
        const Time fire = trace.barrier_fire.at(e.id);
        BM_REQUIRE(fire != kNotExecuted, "trace missing a barrier fire");
        BM_REQUIRE(fire >= cursor, "barrier fired before arrival");
        u.barrier_wait += fire - cursor;
        cursor = fire;
      } else {
        u.used = true;
        const Time start = trace.start.at(e.id);
        const Time finish = trace.finish.at(e.id);
        BM_REQUIRE(start != kNotExecuted, "trace missing an instruction");
        BM_REQUIRE(start == cursor, "instruction did not start on arrival");
        u.busy += finish - start;
        cursor = finish;
      }
    }
    BM_REQUIRE(cursor <= trace.completion, "processor ran past completion");
    u.idle = trace.completion - cursor;
    out.total_busy += u.busy;
    out.total_barrier_wait += u.barrier_wait;
    out.total_idle += u.used ? u.idle : 0;
  }
  return out;
}

}  // namespace bm
