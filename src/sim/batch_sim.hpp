// Seed-batched lockstep simulation of one schedule (the MASIM-style
// multi-array layout applied to the §3.2 machine models).
//
// Key property making W-wide batching exact rather than approximate: the
// scalar simulator consumes randomness ONLY in the upfront duration
// pre-sampling pass (node-id order, see MachineState in simulator.cpp).
// Everything after that — instruction advancement, who waits at which
// barrier, SBM queue order, DBM match order — is purely structural: it
// depends on the schedule, never on the sampled times. W draws of the same
// schedule therefore share one control-flow trajectory, and all per-seed
// state (PE clocks, sampled durations, fire times) batches into seed-major
// rows of W contiguous lanes that the inner loops walk with SIMD
// (support/simd.hpp).
//
// Two sampling disciplines cover the two callers:
//  - batch_simulate_into: W independent rng streams advanced in lockstep;
//    lane w is bit-identical to a serial simulate_into run with rngs[w].
//  - batch_simulate_runs_into: W sequential draw groups from ONE stream;
//    lane w consumes exactly the draws run w of a serial loop over the
//    same rng would, so summarize_completion stays byte-identical while
//    simulating W runs per schedule walk.
#pragma once

#include <span>

#include "sim/simulator.hpp"

namespace bm {

/// Seed-major execution traces for W lanes: the value for (row i, lane w)
/// lives at [i * width + w]. Arrays are resized in place, so a trace
/// reused across batches allocates only on first use.
struct BatchExecTrace {
  std::size_t width = 0;
  std::vector<Time> start;         ///< [instr * width + lane]
  std::vector<Time> finish;        ///< [instr * width + lane]
  std::vector<Time> barrier_fire;  ///< [barrier * width + lane]
  std::vector<Time> completion;    ///< [lane]

  std::span<const Time> start_row(NodeId i) const {
    return {start.data() + i * width, width};
  }
  std::span<const Time> finish_row(NodeId i) const {
    return {finish.data() + i * width, width};
  }
  std::span<const Time> fire_row(BarrierId b) const {
    return {barrier_fire.data() + b * width, width};
  }
};

/// Executes the schedule once per lane, lane w drawing from rngs[w]; the W
/// streams advance in lockstep (per node: one draw from each stream).
/// Bit-identical to W serial simulate_into calls, one per rng.
void batch_simulate_into(const Schedule& sched, const SimConfig& config,
                         std::span<Rng> rngs, BatchExecTrace& trace);

/// Executes the schedule `lanes` times from ONE stream: lane w's durations
/// are sampled after lanes [0, w) finish sampling, so the rng consumption
/// order matches `lanes` sequential simulate_into calls exactly.
void batch_simulate_runs_into(const Schedule& sched, const SimConfig& config,
                              std::size_t lanes, Rng& rng,
                              BatchExecTrace& trace);

}  // namespace bm
