// Discrete-event models of the two barrier-MIMD hardware designs (§3.2):
//
//  SBM — barrier bit-masks in a FIFO queue (Fig. 11). The queue is loaded
//        with a compile-time linear extension of the barrier dag; the top
//        barrier fires once all its participants have raised WAIT, and all
//        participants resume simultaneously. A barrier can therefore be
//        *delayed* (never deadlocked) when the runtime order differs.
//
//  DBM — associative matching: each barrier fires as soon as all its
//        participants are waiting at it, independent of other barriers.
//
// Durations are drawn per instruction from its [min,max] range.
#pragma once

#include "sched/policies.hpp"
#include "sched/schedule.hpp"
#include "sim/sampler.hpp"
#include "sim/trace.hpp"

namespace bm {

struct SimConfig {
  MachineKind machine = MachineKind::kSBM;
  SamplingMode sampling = SamplingMode::kUniform;
};

/// Executes a schedule once; draws consume `rng`.
ExecTrace simulate(const Schedule& sched, const SimConfig& config, Rng& rng);

/// Same, reusing a caller-owned trace (its arrays are resized in place, so
/// a trace reused across the seed loop allocates only on the first run).
void simulate_into(const Schedule& sched, const SimConfig& config, Rng& rng,
                   ExecTrace& trace);

/// Default lane count for batched completion summaries (see
/// sim/batch_sim.hpp; RunOptions/--sim-batch override it). Eight 64-bit
/// lanes span two AVX2 vectors — wide enough to amortize the per-run
/// schedule walk, small enough that ragged tails (runs % W) stay cheap.
inline constexpr std::size_t kDefaultSimBatch = 8;

/// Completion-time summary over `runs` independent uniform draws plus the
/// deterministic all-min / all-max envelope. The uniform draws execute
/// through the seed-batched engine `batch_width` lanes at a time; every
/// width (including the ragged tail) consumes `rng` in the exact serial
/// draw order, so the summary is bit-identical for all widths.
struct CompletionSummary {
  Time min_draw = 0;   ///< all-min deterministic draw
  Time max_draw = 0;   ///< all-max deterministic draw
  double mean = 0.0;   ///< mean over the random runs
};
CompletionSummary summarize_completion(const Schedule& sched,
                                       MachineKind machine, std::size_t runs,
                                       Rng& rng,
                                       std::size_t batch_width = kDefaultSimBatch);

}  // namespace bm
