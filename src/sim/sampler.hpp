// Execution-time draws for simulation: each variable-time instruction's
// duration is sampled from its [min,max] range (§2.1 models cache misses,
// data-dependent multiply/divide, network contention).
#pragma once

#include "ir/timing.hpp"
#include "support/rng.hpp"

namespace bm {

enum class SamplingMode {
  kUniform,  ///< uniform integer draw in [min,max]
  kAllMin,   ///< every instruction takes its minimum (best case)
  kAllMax,   ///< every instruction takes its maximum (worst case / VLIW)
  kBimodal,  ///< min or max with equal probability (adversarial extremes)
};

Time sample_time(const TimeRange& r, SamplingMode mode, Rng& rng);

}  // namespace bm
