// Execution traces produced by the barrier-machine simulators.
#pragma once

#include <vector>

#include "graph/instr_dag.hpp"
#include "ir/timing.hpp"

namespace bm {

inline constexpr Time kNotExecuted = -1;

struct ExecTrace {
  std::vector<Time> start;   ///< per instruction node; kNotExecuted if none
  std::vector<Time> finish;
  std::vector<Time> barrier_fire;  ///< per barrier id; kNotExecuted if dead
  Time completion = 0;             ///< all processors retired
};

/// Producer/consumer pairs whose runtime ordering was violated
/// (finish(producer) > start(consumer)) — must be empty for any schedule
/// produced by a correct insertion algorithm, under any draw.
std::vector<std::pair<NodeId, NodeId>> find_violations(const InstrDag& dag,
                                                       const ExecTrace& trace);

}  // namespace bm
