#include "sim/value_sim.hpp"

#include <algorithm>
#include <numeric>

#include "support/assert.hpp"

namespace bm {

ValueSimResult simulate_values(const Program& prog, const Schedule& sched,
                               const ExecTrace& trace,
                               const std::vector<std::int64_t>&
                                   initial_memory) {
  BM_REQUIRE(sched.instr_dag().num_instructions() == prog.size(),
             "schedule was not built over this program");
  BM_REQUIRE(trace.start.size() == prog.size(),
             "trace shape does not match the program");

  std::vector<NodeId> order(prog.size());
  std::iota(order.begin(), order.end(), NodeId{0});
  for (NodeId i = 0; i < prog.size(); ++i)
    BM_REQUIRE(trace.start[i] != kNotExecuted,
               "trace left an instruction unexecuted");
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return trace.start[a] < trace.start[b];
  });

  ValueSimResult r;
  r.memory.assign(prog.num_vars(), 0);
  for (std::size_t i = 0;
       i < initial_memory.size() && i < r.memory.size(); ++i)
    r.memory[i] = initial_memory[i];
  r.values.assign(prog.size(), 0);

  const auto operand = [&](const Operand& o) {
    return o.is_const() ? o.const_value() : r.values[o.tuple_id()];
  };
  for (const NodeId id : order) {
    const Tuple& t = prog[id];
    if (t.is_load())
      r.values[id] = r.memory[t.var];
    else if (t.is_store())
      r.memory[t.var] = operand(t.lhs);
    else
      r.values[id] = fold_binary(t.op, operand(t.lhs), operand(t.rhs));
  }
  return r;
}

}  // namespace bm
