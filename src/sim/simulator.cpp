#include "sim/simulator.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "sim/batch_sim.hpp"
#include "support/assert.hpp"
#include "support/scratch.hpp"

namespace bm {

namespace {

/// Run-local barrier accounting, folded into the metric registry once per
/// simulation (record_barrier_fire used to touch the registry three times
/// per fire — at hundreds of thousands of simulated runs per experiment
/// that was the dominant obs cost). The folded totals are identical: the
/// stall histogram exports only its monotonic count/sum pair.
struct FireTally {
  std::uint64_t fires = 0;
  Time stall_sum = 0;
  Time fifo_delay_sum = 0;

  void flush() const {
    if (fires > 0) {
      BM_OBS_COUNT_N("sim.barriers_fired", fires);
      BM_OBS_COUNT_N("sim.stall_cycles", stall_sum);
      BM_OBS_OBSERVE_N("sim.barrier_stall", fires, stall_sum);
    }
    if (fifo_delay_sum > 0)
      BM_OBS_COUNT_N("sim.sbm_fifo_delay_cycles", fifo_delay_sum);
  }
};

/// Per-barrier accounting shared by both machine models: stall cycles (sum
/// over participants of fire-time minus arrival-time) into the run tally,
/// plus — when tracing — a stall span per participant lane and a fire
/// instant on each lane of the simulated-machine track.
void record_barrier_fire(const Schedule& sched, BarrierId b, Time fire,
                         const std::vector<Time>& arrivals, FireTally& tally) {
  ++tally.fires;
  Time stall_total = 0;
  for (const Time a : arrivals) stall_total += fire - a;
  tally.stall_sum += stall_total;
  if (BM_OBS_TRACING()) {
    std::size_t k = 0;
    sched.barrier_mask(b).for_each([&](std::size_t p) {
      const Time a = arrivals[k++];
      if (fire > a)
        obs::sim_span("stall", "sim", static_cast<std::uint32_t>(p),
                      static_cast<double>(a), static_cast<double>(fire - a),
                      "barrier", static_cast<double>(b));
      obs::sim_instant("fire b" + std::to_string(b), "sim",
                       static_cast<std::uint32_t>(p),
                       static_cast<double>(fire));
    });
  }
}

class MachineState {
 public:
  MachineState(const Schedule& sched, SamplingMode mode, Rng& rng,
               ExecTrace& trace)
      : sched_(sched), trace_(trace) {
    idx_->assign(sched.num_procs(), 0);
    time_->assign(sched.num_procs(), 0);
    waiting_->assign(sched.num_procs(), 0);
    // Pre-sample every instruction's duration in node-id order, so the
    // realized draw is a property of the run, not of the machine model's
    // internal event order — SBM and DBM replay identical draws from the
    // same rng state.
    const std::size_t n = sched.instr_dag().num_instructions();
    durations_->resize(n);
    for (NodeId i = 0; i < n; ++i)
      (*durations_)[i] = sample_time(sched.instr_dag().time(i), mode, rng);
  }

  /// Advances processor p until it blocks on a barrier entry or retires its
  /// stream; instruction start/finish times are recorded as they execute.
  void run_proc(ProcId p) {
    if ((*waiting_)[p]) return;
    const auto& s = sched_.stream(p);
    auto& idx = *idx_;
    auto& time = *time_;
    while (idx[p] < s.size()) {
      const ScheduleEntry& e = s[idx[p]];
      if (e.is_barrier) {
        (*waiting_)[p] = 1;
        return;
      }
      const Time dur = (*durations_)[e.id];
      trace_.start[e.id] = time[p];
      time[p] += dur;
      trace_.finish[e.id] = time[p];
      ++idx[p];
    }
  }

  void run_all() {
    for (ProcId p = 0; p < sched_.num_procs(); ++p) run_proc(p);
  }

  bool waiting(ProcId p) const { return (*waiting_)[p] != 0; }
  Time arrival(ProcId p) const { return (*time_)[p]; }
  bool done(ProcId p) const {
    return !waiting(p) && (*idx_)[p] >= sched_.stream(p).size();
  }
  /// The barrier entry p is currently waiting at.
  BarrierId waiting_at(ProcId p) const {
    BM_ASSERT_INTERNAL(waiting(p), "processor is not waiting");
    return sched_.stream(p)[(*idx_)[p]].id;
  }

  void release(ProcId p, Time fire) {
    BM_ASSERT_INTERNAL(waiting(p), "releasing a running processor");
    (*waiting_)[p] = 0;
    (*time_)[p] = fire;  // simultaneous resume (§3.2)
    ++(*idx_)[p];
  }

  Time completion() const {
    Time t = 0;
    for (ProcId p = 0; p < sched_.num_procs(); ++p) {
      BM_ASSERT_INTERNAL(!waiting(p), "deadlocked processor at completion");
      t = std::max(t, (*time_)[p]);
    }
    return t;
  }

 private:
  const Schedule& sched_;
  ExecTrace& trace_;
  // Pooled: one MachineState is built per simulation run, and experiment
  // sweeps run thousands of simulations per thread.
  ScratchVec<Time> durations_;
  ScratchVec<std::uint32_t> idx_;
  ScratchVec<Time> time_;
  ScratchVec<char> waiting_;  ///< 0/1 flags (vector<bool> defeats pooling)
};

void simulate_sbm(const Schedule& sched, MachineState& m, ExecTrace& trace,
                  FireTally& tally) {
  // Compile-time queue load order: a linear extension of the barrier dag.
  ScratchVec<BarrierId> queue_s;
  sched.barrier_dag().linear_extension_into(*queue_s);
  Time last_fire = 0;
  ScratchVec<Time> arrivals_s;
  std::vector<Time>& arrivals = *arrivals_s;  // in mask order, per barrier
  for (BarrierId b : *queue_s) {
    if (b == Schedule::kInitialBarrier) {
      trace.barrier_fire[b] = 0;  // all processors start in exact synchrony
      continue;
    }
    m.run_all();
    // All participants must be waiting at exactly this barrier: the queue
    // order extends every per-processor stream order, so earlier stream
    // barriers have already fired.
    Time last_arrival = 0;
    arrivals.clear();
    sched.barrier_mask(b).for_each([&](std::size_t p) {
      const auto proc = static_cast<ProcId>(p);
      BM_ASSERT_INTERNAL(m.waiting(proc) && m.waiting_at(proc) == b,
                         "SBM participant not waiting at queue top");
      arrivals.push_back(m.arrival(proc));
      last_arrival = std::max(last_arrival, m.arrival(proc));
    });
    // FIFO semantics: the mask cannot fire before its queue predecessor —
    // any extra wait beyond the arrivals is pure SBM ordering delay.
    if (last_fire > last_arrival)
      tally.fifo_delay_sum += last_fire - last_arrival;
    const Time fire =
        std::max(last_fire, last_arrival) + sched.barrier_latency();
    trace.barrier_fire[b] = fire;
    last_fire = fire;  // a barrier becomes top only after its predecessor fires
    record_barrier_fire(sched, b, fire, arrivals, tally);
    sched.barrier_mask(b).for_each(
        [&](std::size_t p) { m.release(static_cast<ProcId>(p), fire); });
  }
  m.run_all();
}

void simulate_dbm(const Schedule& sched, MachineState& m, ExecTrace& trace,
                  FireTally& tally) {
  trace.barrier_fire[Schedule::kInitialBarrier] = 0;
  ScratchVec<Time> arrivals_s;
  std::vector<Time>& arrivals = *arrivals_s;  // in mask order, per barrier
  for (;;) {
    m.run_all();
    // Associative match: fire every barrier whose participants all wait at it.
    bool fired = false;
    for (BarrierId b = 1; b < sched.barrier_id_bound(); ++b) {
      if (!sched.barrier_alive(b)) continue;
      if (trace.barrier_fire[b] != kNotExecuted) continue;
      bool all_waiting = true;
      Time fire = 0;
      arrivals.clear();
      sched.barrier_mask(b).for_each([&](std::size_t p) {
        const auto proc = static_cast<ProcId>(p);
        if (!m.waiting(proc) || m.waiting_at(proc) != b) {
          all_waiting = false;
          return;
        }
        arrivals.push_back(m.arrival(proc));
        fire = std::max(fire, m.arrival(proc));
      });
      if (!all_waiting) continue;
      fire += sched.barrier_latency();
      trace.barrier_fire[b] = fire;
      record_barrier_fire(sched, b, fire, arrivals, tally);
      sched.barrier_mask(b).for_each(
          [&](std::size_t p) { m.release(static_cast<ProcId>(p), fire); });
      fired = true;
    }
    if (!fired) break;
  }
}

}  // namespace

void simulate_into(const Schedule& sched, const SimConfig& config, Rng& rng,
                   ExecTrace& trace) {
  BM_OBS_COUNT("sim.runs");
  BM_OBS_SPAN(span,
              config.machine == MachineKind::kSBM ? "sim.run_sbm"
                                                  : "sim.run_dbm",
              "sim");
  const std::size_t n = sched.instr_dag().num_instructions();
  trace.start.assign(n, kNotExecuted);
  trace.finish.assign(n, kNotExecuted);
  trace.barrier_fire.assign(sched.barrier_id_bound(), kNotExecuted);
  trace.completion = 0;

  MachineState m(sched, config.sampling, rng, trace);
  FireTally tally;
  if (config.machine == MachineKind::kSBM)
    simulate_sbm(sched, m, trace, tally);
  else
    simulate_dbm(sched, m, trace, tally);
  tally.flush();

  for (ProcId p = 0; p < sched.num_procs(); ++p)
    BM_REQUIRE(m.done(p), "simulation deadlock: processor never released");
  trace.completion = m.completion();
}

ExecTrace simulate(const Schedule& sched, const SimConfig& config, Rng& rng) {
  ExecTrace trace;
  simulate_into(sched, config, rng, trace);
  return trace;
}

namespace {

/// Per-thread traces reused by summarize_completion's draw loop; the arrays
/// are resized in place, so completions over the seed sweep do not allocate
/// in steady state.
ExecTrace& tls_trace() {
  static thread_local ExecTrace t;
  return t;
}

BatchExecTrace& tls_batch_trace() {
  static thread_local BatchExecTrace t;
  return t;
}

}  // namespace

CompletionSummary summarize_completion(const Schedule& sched,
                                       MachineKind machine, std::size_t runs,
                                       Rng& rng, std::size_t batch_width) {
  CompletionSummary out;
  ExecTrace& t = tls_trace();
  simulate_into(sched, {machine, SamplingMode::kAllMin}, rng, t);
  out.min_draw = t.completion;
  simulate_into(sched, {machine, SamplingMode::kAllMax}, rng, t);
  out.max_draw = t.completion;
  // Uniform draws run through the lockstep batch engine W lanes at a time.
  // The lane-sequential sampler consumes `rng` in the exact order of the
  // historical serial loop, and the mean folds lane results in lane (= run)
  // order, so the summary is bit-identical for every batch width.
  const std::size_t W = batch_width ? batch_width : 1;
  BatchExecTrace& bt = tls_batch_trace();
  double total = 0;
  for (std::size_t r = 0; r < runs;) {
    const std::size_t lanes = std::min(W, runs - r);
    batch_simulate_runs_into(sched, {machine, SamplingMode::kUniform}, lanes,
                             rng, bt);
    for (std::size_t w = 0; w < lanes; ++w)
      total += static_cast<double>(bt.completion[w]);
    r += lanes;
  }
  out.mean = runs ? total / static_cast<double>(runs) : 0.0;
  return out;
}

}  // namespace bm
