#include "sim/sampler.hpp"

namespace bm {

Time sample_time(const TimeRange& r, SamplingMode mode, Rng& rng) {
  BM_REQUIRE(r.valid(), "invalid time range");
  switch (mode) {
    case SamplingMode::kAllMin: return r.min;
    case SamplingMode::kAllMax: return r.max;
    case SamplingMode::kUniform: return rng.uniform(r.min, r.max);
    case SamplingMode::kBimodal: return rng.chance(0.5) ? r.min : r.max;
  }
  return r.max;
}

}  // namespace bm
