// Trace analysis: decompose each processor's wall-clock time into useful
// compute, barrier waiting, and idle — the machine-utilization view behind
// the paper's completion-time comparisons.
#pragma once

#include "sched/schedule.hpp"
#include "sim/trace.hpp"

namespace bm {

struct ProcUtilization {
  bool used = false;       ///< processor has at least one instruction
  Time busy = 0;           ///< executing instructions
  Time barrier_wait = 0;   ///< arrived at a barrier, waiting for the fire
  Time idle = 0;           ///< after retiring its stream, or never used

  Time total() const { return busy + barrier_wait + idle; }
};

struct TraceAnalysis {
  Time completion = 0;
  std::vector<ProcUtilization> procs;

  Time total_busy = 0;
  Time total_barrier_wait = 0;
  Time total_idle = 0;

  /// busy / (procs × completion) over used processors.
  double machine_utilization() const;
  /// barrier_wait / (busy + barrier_wait + idle) over used processors.
  double wait_fraction() const;
};

/// Decomposes an executed trace. The trace must come from simulating
/// exactly this schedule.
TraceAnalysis analyze_trace(const Schedule& sched, const ExecTrace& trace);

}  // namespace bm
