#include "sim/batch_sim.hpp"

#include <cstring>

#include "obs/obs.hpp"
#include "support/assert.hpp"
#include "support/scratch.hpp"
#include "support/simd.hpp"

namespace bm {

namespace {

/// W-lane machine state. The *structural* state (stream cursors, waiting
/// flags) is a single copy shared by every lane — the sampled times never
/// feed back into control flow, so all lanes advance through the schedule
/// in lockstep. Only the clocks and durations are per-lane, stored
/// seed-major so the W-wide inner loops are contiguous.
class BatchMachineState {
 public:
  BatchMachineState(const Schedule& sched, std::size_t width,
                    BatchExecTrace& trace)
      : sched_(sched), trace_(trace), width_(width) {
    idx_->assign(sched.num_procs(), 0);
    waiting_->assign(sched.num_procs(), 0);
    time_->assign(sched.num_procs() * width, 0);
    durations_->resize(sched.instr_dag().num_instructions() * width);
  }

  std::vector<Time>& durations() { return *durations_; }
  Time* time_row(ProcId p) { return time_->data() + p * width_; }

  /// Advances processor p until it blocks on a barrier entry or retires its
  /// stream; every lane's start/finish times are recorded as it executes.
  void run_proc(ProcId p) {
    if ((*waiting_)[p]) return;
    const auto& s = sched_.stream(p);
    auto& idx = (*idx_)[p];
    Time* __restrict__ t = time_row(p);
    while (idx < s.size()) {
      const ScheduleEntry& e = s[idx];
      if (e.is_barrier) {
        (*waiting_)[p] = 1;
        return;
      }
      simd::step_lanes(t, durations_->data() + e.id * width_,
                       trace_.start.data() + e.id * width_,
                       trace_.finish.data() + e.id * width_, width_);
      ++idx;
    }
  }

  void run_all() {
    for (ProcId p = 0; p < sched_.num_procs(); ++p) run_proc(p);
  }

  bool waiting(ProcId p) const { return (*waiting_)[p] != 0; }
  bool done(ProcId p) const {
    return !waiting(p) && (*idx_)[p] >= sched_.stream(p).size();
  }
  BarrierId waiting_at(ProcId p) const {
    BM_ASSERT_INTERNAL(waiting(p), "processor is not waiting");
    return sched_.stream(p)[(*idx_)[p]].id;
  }

  void release(ProcId p, const Time* fire) {
    BM_ASSERT_INTERNAL(waiting(p), "releasing a running processor");
    (*waiting_)[p] = 0;
    std::memcpy(time_row(p), fire, width_ * sizeof(Time));  // §3.2 resume
    ++(*idx_)[p];
  }

  void completion_into(Time* out) const {
    std::memset(out, 0, width_ * sizeof(Time));
    for (ProcId p = 0; p < sched_.num_procs(); ++p) {
      BM_ASSERT_INTERNAL(!waiting(p), "deadlocked processor at completion");
      simd::max_accumulate(out, time_->data() + p * width_, width_);
    }
  }

 private:
  const Schedule& sched_;
  BatchExecTrace& trace_;
  std::size_t width_;
  // Pooled: one state per batch, thousands of batches per seed sweep.
  ScratchVec<Time> durations_;  ///< [instr * width + lane]
  ScratchVec<Time> time_;       ///< [proc * width + lane]
  ScratchVec<std::uint32_t> idx_;
  ScratchVec<char> waiting_;  ///< 0/1 flags (vector<bool> defeats pooling)
};

/// Per-barrier accounting, replicating the scalar simulator's registry
/// bumps exactly: one fired count, one stall observation, and the summed
/// stall cycles per lane — so a W-lane batch leaves the (manifest-embedded)
/// sim.* counters identical to W scalar runs. Traced runs get one
/// representative set of lane-0 machine events rather than W copies.
void record_batch_fire(const Schedule& sched, BarrierId b, const Time* fire,
                       const Time* stall, std::size_t width) {
  BM_OBS_COUNT_N("sim.barriers_fired", width);
  Time total = 0;
  for (std::size_t w = 0; w < width; ++w) total += stall[w];
  BM_OBS_COUNT_N("sim.stall_cycles", total);
  for (std::size_t w = 0; w < width; ++w)
    BM_OBS_OBSERVE("sim.barrier_stall", stall[w]);
  if (BM_OBS_TRACING()) {
    sched.barrier_mask(b).for_each([&](std::size_t p) {
      obs::sim_instant("fire b" + std::to_string(b), "sim",
                       static_cast<std::uint32_t>(p),
                       static_cast<double>(fire[0]), "lanes",
                       static_cast<double>(width));
    });
  }
}

void batch_simulate_sbm(const Schedule& sched, BatchMachineState& m,
                        std::size_t W, BatchExecTrace& trace) {
  ScratchVec<BarrierId> queue_s;
  sched.barrier_dag().linear_extension_into(*queue_s);
  ScratchVec<Time> rows_s;
  auto& rows = *rows_s;
  rows.assign(3 * W, 0);
  Time* last_fire = rows.data();        // fire time of the previous queue top
  Time* arrival = rows.data() + W;      // latest participant arrival
  Time* stall = rows.data() + 2 * W;    // summed stall over participants
  for (BarrierId b : *queue_s) {
    Time* fire = trace.barrier_fire.data() + b * W;
    if (b == Schedule::kInitialBarrier) {
      std::memset(fire, 0, W * sizeof(Time));  // exact initial synchrony
      continue;
    }
    m.run_all();
    std::memset(arrival, 0, W * sizeof(Time));
    sched.barrier_mask(b).for_each([&](std::size_t p) {
      const auto proc = static_cast<ProcId>(p);
      BM_ASSERT_INTERNAL(m.waiting(proc) && m.waiting_at(proc) == b,
                         "SBM participant not waiting at queue top");
      simd::max_accumulate(arrival, m.time_row(proc), W);
    });
    // FIFO semantics: the mask cannot fire before its queue predecessor —
    // any extra wait beyond the arrivals is pure SBM ordering delay.
    const Time delay = simd::fire_lanes(fire, last_fire, arrival,
                                        sched.barrier_latency(), W);
    if (delay > 0) BM_OBS_COUNT_N("sim.sbm_fifo_delay_cycles", delay);
    std::memcpy(last_fire, fire, W * sizeof(Time));
    std::memset(stall, 0, W * sizeof(Time));
    sched.barrier_mask(b).for_each([&](std::size_t p) {
      simd::add_diff(stall, fire, m.time_row(static_cast<ProcId>(p)), W);
    });
    record_batch_fire(sched, b, fire, stall, W);
    sched.barrier_mask(b).for_each(
        [&](std::size_t p) { m.release(static_cast<ProcId>(p), fire); });
  }
  m.run_all();
}

void batch_simulate_dbm(const Schedule& sched, BatchMachineState& m,
                        std::size_t W, BatchExecTrace& trace) {
  std::memset(trace.barrier_fire.data() + Schedule::kInitialBarrier * W, 0,
              W * sizeof(Time));
  ScratchVec<Time> rows_s;
  auto& rows = *rows_s;
  rows.assign(2 * W, 0);
  Time* fire = rows.data();
  Time* stall = rows.data() + W;
  for (;;) {
    m.run_all();
    // Associative match: fire every barrier whose participants all wait at
    // it. Eligibility is structural, hence identical across lanes.
    bool fired = false;
    for (BarrierId b = 1; b < sched.barrier_id_bound(); ++b) {
      if (!sched.barrier_alive(b)) continue;
      Time* fire_out = trace.barrier_fire.data() + b * W;
      if (fire_out[0] != kNotExecuted) continue;  // lanes fire together
      bool all_waiting = true;
      sched.barrier_mask(b).for_each([&](std::size_t p) {
        const auto proc = static_cast<ProcId>(p);
        if (!m.waiting(proc) || m.waiting_at(proc) != b) all_waiting = false;
      });
      if (!all_waiting) continue;
      std::memset(fire, 0, W * sizeof(Time));
      sched.barrier_mask(b).for_each([&](std::size_t p) {
        simd::max_accumulate(fire, m.time_row(static_cast<ProcId>(p)), W);
      });
      for (std::size_t w = 0; w < W; ++w) fire[w] += sched.barrier_latency();
      std::memcpy(fire_out, fire, W * sizeof(Time));
      std::memset(stall, 0, W * sizeof(Time));
      sched.barrier_mask(b).for_each([&](std::size_t p) {
        simd::add_diff(stall, fire, m.time_row(static_cast<ProcId>(p)), W);
      });
      record_batch_fire(sched, b, fire, stall, W);
      sched.barrier_mask(b).for_each(
          [&](std::size_t p) { m.release(static_cast<ProcId>(p), fire); });
      fired = true;
    }
    if (!fired) break;
  }
}

/// Shared body: `sample` fills the seed-major duration matrix, then one
/// structural walk executes all lanes.
template <typename SampleFn>
void batch_run(const Schedule& sched, const SimConfig& config, std::size_t W,
               BatchExecTrace& trace, SampleFn&& sample) {
  BM_REQUIRE(W >= 1, "batch width must be >= 1");
  BM_OBS_COUNT_N("sim.runs", W);
  BM_OBS_COUNT("mem.batch.runs");
  BM_OBS_COUNT_N("mem.batch.lanes", W);
  BM_OBS_SPAN_ARG(span,
                  config.machine == MachineKind::kSBM ? "sim.run_sbm_batch"
                                                      : "sim.run_dbm_batch",
                  "sim", "lanes", static_cast<double>(W));
  const std::size_t n = sched.instr_dag().num_instructions();
  trace.width = W;
  trace.start.assign(n * W, kNotExecuted);
  trace.finish.assign(n * W, kNotExecuted);
  trace.barrier_fire.assign(sched.barrier_id_bound() * W, kNotExecuted);
  trace.completion.assign(W, 0);

  BatchMachineState m(sched, W, trace);
  sample(m.durations());
  if (config.machine == MachineKind::kSBM)
    batch_simulate_sbm(sched, m, W, trace);
  else
    batch_simulate_dbm(sched, m, W, trace);

  for (ProcId p = 0; p < sched.num_procs(); ++p)
    BM_REQUIRE(m.done(p), "simulation deadlock: processor never released");
  m.completion_into(trace.completion.data());
}

}  // namespace

void batch_simulate_into(const Schedule& sched, const SimConfig& config,
                         std::span<Rng> rngs, BatchExecTrace& trace) {
  const std::size_t W = rngs.size();
  batch_run(sched, config, W, trace, [&](std::vector<Time>& dur) {
    // Lockstep streams: per node, one draw from every stream. Each stream
    // individually sees its draws in node-id order — exactly the scalar
    // pre-sampling pass — so lane w replays rngs[w]'s serial run.
    const InstrDag& dag = sched.instr_dag();
    const std::size_t n = dag.num_instructions();
    for (NodeId i = 0; i < n; ++i) {
      const TimeRange r = dag.time(i);
      Time* row = dur.data() + i * W;
      for (std::size_t w = 0; w < W; ++w)
        row[w] = sample_time(r, config.sampling, rngs[w]);
    }
  });
}

void batch_simulate_runs_into(const Schedule& sched, const SimConfig& config,
                              std::size_t lanes, Rng& rng,
                              BatchExecTrace& trace) {
  batch_run(sched, config, lanes, trace, [&](std::vector<Time>& dur) {
    // Sequential draw groups: lane w consumes the stream only after lanes
    // [0, w) are fully sampled, matching `lanes` back-to-back scalar runs
    // over the same rng draw for draw.
    const InstrDag& dag = sched.instr_dag();
    const std::size_t n = dag.num_instructions();
    for (std::size_t w = 0; w < lanes; ++w)
      for (NodeId i = 0; i < n; ++i)
        dur[i * lanes + w] = sample_time(dag.time(i), config.sampling, rng);
  });
}

}  // namespace bm
