// Aggregation of per-benchmark schedule statistics into the per-point
// averages the paper plots (100 synthetic benchmarks per curve point, §5).
#pragma once

#include "sched/scheduler.hpp"
#include "support/stats.hpp"

namespace bm {

/// Streaming aggregate of ScheduleStats over many benchmarks.
struct FractionAggregate {
  RunningStats barrier_frac;
  RunningStats serialized_frac;
  RunningStats static_frac;
  RunningStats no_runtime_frac;
  RunningStats implied_syncs;
  RunningStats barriers;
  RunningStats barriers_inserted;
  RunningStats merges;
  RunningStats repairs;
  RunningStats procs_used;
  RunningStats completion_min;
  RunningStats completion_max;
  /// Fraction of cross-PE pairs resolved without a new barrier at check
  /// time (path- or timing-satisfied).
  RunningStats cross_resolved_frac;

  /// §3's "about 28%": among pairs that reach the timing check (no barrier
  /// chain orders them yet), the fraction resolved statically thanks to
  /// earlier barriers' timing — timing-satisfied / (timing-satisfied +
  /// barriers inserted).
  RunningStats timing_avoidance_frac;

  void add(const ScheduleStats& s);
};

}  // namespace bm
