#include "metrics/aggregate.hpp"

namespace bm {

void FractionAggregate::add(const ScheduleStats& s) {
  barrier_frac.add(s.barrier_fraction());
  serialized_frac.add(s.serialized_fraction());
  static_frac.add(s.static_fraction());
  no_runtime_frac.add(s.no_runtime_sync_fraction());
  implied_syncs.add(static_cast<double>(s.implied_syncs));
  barriers.add(static_cast<double>(s.barriers_final));
  barriers_inserted.add(static_cast<double>(s.barriers_inserted));
  merges.add(static_cast<double>(s.merges));
  repairs.add(static_cast<double>(s.repair_barriers));
  procs_used.add(static_cast<double>(s.procs_used));
  completion_min.add(static_cast<double>(s.completion.min));
  completion_max.add(static_cast<double>(s.completion.max));
  if (s.cross_edges > 0) {
    cross_resolved_frac.add(
        static_cast<double>(s.cross_path_satisfied +
                            s.cross_timing_satisfied) /
        static_cast<double>(s.cross_edges));
  }
  const std::size_t timing_checked =
      s.cross_timing_satisfied + s.barriers_inserted;
  if (timing_checked > 0) {
    timing_avoidance_frac.add(static_cast<double>(s.cross_timing_satisfied) /
                              static_cast<double>(timing_checked));
  }
}

}  // namespace bm
