// Named machine descriptions: bundled timing model + barrier hardware cost
// + default size, so examples, benches, and downstream users can pick a
// machine by name instead of re-deriving Table-1 variants.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "ir/timing.hpp"

namespace bm {

struct MachineDescription {
  std::string name;
  std::string summary;
  TimingModel timing;
  Time barrier_latency = 0;
  std::size_t default_procs = 8;
};

/// The machines shipped with the library:
///  - "paper-risc-node": Table 1 exactly, free barriers (the paper's §2/§5
///    single-chip multiprocessor RISC node).
///  - "bus-smp": shared-bus contention — Load [1,12], everything else
///    Table 1, barrier latency 1.
///  - "pipelined-fpu": constant-time multiplier/divider (extra hardware the
///    paper's §6 recommends), Load [1,4].
///  - "network-cluster": multistage-interconnect loads [2,20], barrier
///    latency 4 — the regime where static scheduling is hardest.
const std::vector<MachineDescription>& machine_presets();

/// Lookup by name; throws bm::Error with the list of valid names.
const MachineDescription& machine_preset(std::string_view name);

}  // namespace bm
