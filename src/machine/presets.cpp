#include "machine/presets.hpp"

#include "support/assert.hpp"

namespace bm {

namespace {

std::vector<MachineDescription> build_presets() {
  std::vector<MachineDescription> out;

  {
    MachineDescription m;
    m.name = "paper-risc-node";
    m.summary = "Table 1 exactly; barriers fire on last arrival (the "
                "paper's single-chip multiprocessor RISC node)";
    m.timing = TimingModel::table1();
    m.barrier_latency = 0;
    m.default_procs = 8;
    out.push_back(std::move(m));
  }
  {
    MachineDescription m;
    m.name = "bus-smp";
    m.summary = "shared-bus SMP: loads contend on the bus ([1,12]); one "
                "cycle of barrier release latency";
    m.timing = TimingModel::table1();
    m.timing.set(Opcode::kLoad, {1, 12});
    m.barrier_latency = 1;
    m.default_procs = 8;
    out.push_back(std::move(m));
  }
  {
    MachineDescription m;
    m.name = "pipelined-fpu";
    m.summary = "pipelined multiplier/divider (fixed latency; the hardware "
                "§6 recommends to cut worst-case times)";
    m.timing = TimingModel::table1();
    m.timing.set(Opcode::kMul, TimeRange::fixed(18));
    m.timing.set(Opcode::kDiv, TimeRange::fixed(26));
    m.timing.set(Opcode::kMod, TimeRange::fixed(26));
    m.barrier_latency = 0;
    m.default_procs = 8;
    out.push_back(std::move(m));
  }
  {
    MachineDescription m;
    m.name = "network-cluster";
    m.summary = "multistage interconnect: loads [2,20]; barrier release "
                "costs 4 cycles";
    m.timing = TimingModel::table1();
    m.timing.set(Opcode::kLoad, {2, 20});
    m.barrier_latency = 4;
    m.default_procs = 16;
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace

const std::vector<MachineDescription>& machine_presets() {
  static const std::vector<MachineDescription> presets = build_presets();
  return presets;
}

const MachineDescription& machine_preset(std::string_view name) {
  for (const MachineDescription& m : machine_presets())
    if (m.name == name) return m;
  std::string valid;
  for (const MachineDescription& m : machine_presets())
    valid += (valid.empty() ? "" : ", ") + m.name;
  throw Error("unknown machine preset '" + std::string(name) +
              "' (valid: " + valid + ")");
}

}  // namespace bm
