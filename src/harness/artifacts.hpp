// Structured experiment artifacts: every experiment run writes its
// machine-readable outputs (CSV series + one JSON result file) into a
// single artifact directory instead of littering the working directory.
// The writer is the split-out "file side" of harness/report: report.cpp
// renders tables to stdout, ArtifactWriter owns what lands on disk.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace bm {

class ArtifactWriter {
 public:
  /// Creates `dir` (and parents) if missing; artifacts for `experiment`
  /// are named after it (JSON manifest: `<dir>/<experiment>.json`).
  ArtifactWriter(std::string dir, std::string experiment);

  const std::string& dir() const { return dir_; }
  const std::string& experiment() const { return experiment_; }

  /// Full path for a CSV artifact `<dir>/<stem>.csv` (empty stem = the
  /// experiment name); records the basename in the manifest. Call then
  /// construct a CsvWriter on the result.
  std::string csv_path(const std::string& stem = "");

  /// Records a numeric / text metric for the JSON result file. Keys keep
  /// insertion order so reruns are byte-identical.
  void metric(const std::string& key, double value);
  void metric(const std::string& key, const std::string& value);

  /// Writes `<dir>/<experiment>.json`: info fields (strings, in order),
  /// metrics, and the list of CSV artifacts written so far. Reruns with
  /// identical inputs produce byte-identical files (no timestamps, no
  /// worker counts), which the registry test relies on for the
  /// jobs=1 vs jobs=2 determinism check.
  void write_json(
      const std::vector<std::pair<std::string, std::string>>& info) const;

  /// Basenames of the CSV artifacts registered so far.
  const std::vector<std::string>& files() const { return files_; }

 private:
  struct Metric {
    std::string key;
    std::string rendered;  ///< JSON fragment (number or quoted string)
  };
  std::string dir_;
  std::string experiment_;
  std::vector<std::string> files_;
  std::vector<Metric> metrics_;
};

/// JSON string escaping shared by the writer and bmrun's describe output.
std::string json_quote(const std::string& s);

}  // namespace bm
