#include "harness/experiment.hpp"

#include <vector>

#include "obs/obs.hpp"
#include "support/assert.hpp"
#include "support/thread_pool.hpp"
#include "verify/verify.hpp"

namespace bm {

Rng benchmark_rng(std::uint64_t base_seed, std::size_t index) {
  std::uint64_t mix = base_seed;
  (void)split_mix64(mix);
  mix ^= 0x5851F42D4C957F2Dull * (index + 1);
  return Rng(split_mix64(mix));
}

namespace {

/// Everything one seeded benchmark contributes to the point aggregate.
/// Computed independently per seed (the expensive part, safe to run on any
/// worker thread), then folded into PointAggregate strictly in seed order so
/// `--jobs N` is bit-identical to the serial run.
struct SeedResult {
  BenchmarkOutcome outcome;
  std::size_t violations = 0;
  std::size_t verify_errors = 0;
  std::string verify_first;  ///< first verifier diagnostic (error context)
};

SeedResult run_seed(const GeneratorConfig& gen, const SchedulerConfig& sched,
                    const RunOptions& opt, std::size_t i) {
  BM_OBS_SPAN_ARG(seed_span, "harness.seed", "harness", "seed",
                  static_cast<double>(i));
  Rng rng = benchmark_rng(opt.base_seed, i);
  const SynthesisResult synth = synthesize_benchmark(gen, rng);
  const InstrDag dag = [&] {
    BM_OBS_SPAN(span, "dag.build", "graph");
    return InstrDag::build(synth.program, opt.timing);
  }();

  SeedResult r;
  r.outcome.seed_index = i;
  r.outcome.program_size = synth.program.size();

  ScheduleResult scheduled = schedule_program(dag, sched, rng);
  r.outcome.stats = scheduled.stats;

  if (opt.with_vliw) {
    BM_OBS_SPAN(span, "vliw.schedule", "vliw");
    const VliwSchedule vliw = schedule_vliw(dag, sched.num_procs);
    r.outcome.vliw_makespan = vliw.makespan;
  }

  if (opt.verify) {
    BM_OBS_SPAN(span, "verify.schedule", "verify");
    // Redundancy linting is advisory and O(B·(V+E)); the harness check is
    // about soundness, so skip it to stay within the throughput budget.
    VerifyOptions vopt;
    vopt.lint_redundant = false;
    const VerifyReport report =
        verify_schedule(dag, *scheduled.schedule, vopt);
    r.verify_errors = report.error_count();
    if (!report.clean()) {
      for (const VerifyDiagnostic& d : report.diagnostics()) {
        if (d.severity != VerifySeverity::kError) continue;
        r.verify_first = "[seed " + std::to_string(i) + "] " + d.code + ": " +
                         d.message;
        break;
      }
    }
  }

  if (opt.sim_runs > 0 || opt.validate_draws) {
    BM_OBS_SPAN(span, "sim.summarize", "sim");
    const std::size_t runs = opt.sim_runs > 0 ? opt.sim_runs : 1;
    if (opt.validate_draws) {
      static thread_local ExecTrace t;  // resized in place per draw
      for (std::size_t k = 0; k < runs; ++k) {
        simulate_into(*scheduled.schedule,
                      {sched.machine, SamplingMode::kUniform}, rng, t);
        r.violations += find_violations(dag, t).size();
      }
    }
    r.outcome.barrier_completion = summarize_completion(
        *scheduled.schedule, sched.machine, opt.sim_runs, rng, opt.sim_batch);
  }
  return r;
}

/// The fold step. Performs the exact `.add()` sequence of the historical
/// serial loop; both the serial and the parallel path go through here, one
/// seed at a time, in seed order.
void accumulate(PointAggregate& agg, const SeedResult& r,
                const RunOptions& opt) {
  if (opt.verify) {
    ++agg.verified_schedules;
    agg.verify_errors += r.verify_errors;
  }
  agg.fractions.add(r.outcome.stats);
  agg.program_size.add(static_cast<double>(r.outcome.program_size));
  if (opt.with_vliw)
    agg.vliw_makespan.add(static_cast<double>(r.outcome.vliw_makespan));
  if (opt.sim_runs > 0 || opt.validate_draws) {
    agg.violation_count += r.violations;
    if (opt.with_vliw && r.outcome.vliw_makespan > 0) {
      const auto v = static_cast<double>(r.outcome.vliw_makespan);
      agg.norm_min.add(
          static_cast<double>(r.outcome.barrier_completion.min_draw) / v);
      agg.norm_max.add(
          static_cast<double>(r.outcome.barrier_completion.max_draw) / v);
      if (opt.sim_runs > 0)
        agg.norm_mean.add(r.outcome.barrier_completion.mean / v);
    }
  }
}

}  // namespace

PointAggregate run_point(const GeneratorConfig& gen,
                         const SchedulerConfig& sched, const RunOptions& opt,
                         const PerBenchmarkHook& hook) {
  PointAggregate agg;
  const std::size_t jobs =
      opt.jobs == 0 ? ThreadPool::default_jobs() : opt.jobs;

  std::string first_verify_error;
  auto note_verify = [&](const SeedResult& r) {
    if (first_verify_error.empty() && !r.verify_first.empty())
      first_verify_error = r.verify_first;
  };
  // A verifier error is a scheduler soundness bug, never a data point:
  // surface it as a hard failure once every seed has been folded (so the
  // error message can report the full count, not just the first seed).
  auto check_verify = [&]() {
    if (!opt.verify || agg.verify_errors == 0) return;
    throw Error("schedule verification failed: " +
                std::to_string(agg.verify_errors) + " error(s) across " +
                std::to_string(agg.verified_schedules) +
                " schedule(s); first: " + first_verify_error);
  };

  if (jobs <= 1 || opt.seeds <= 1) {
    for (std::size_t i = 0; i < opt.seeds; ++i) {
      const SeedResult r = run_seed(gen, sched, opt, i);
      accumulate(agg, r, opt);
      note_verify(r);
      if (hook) hook(r.outcome);
    }
    check_verify();
    return agg;
  }

  // Fan the seeds out; each worker owns a disjoint set of indices and every
  // seed derives its own RNG stream from (base_seed, i), so workers share no
  // mutable state. Results are folded in seed order afterwards.
  std::vector<SeedResult> results(opt.seeds);
  parallel_for_jobs(jobs, opt.seeds, [&](std::size_t i) {
    results[i] = run_seed(gen, sched, opt, i);
  });
  for (const SeedResult& r : results) {
    accumulate(agg, r, opt);
    note_verify(r);
    if (hook) hook(r.outcome);
  }
  check_verify();
  return agg;
}

}  // namespace bm
