#include "harness/experiment.hpp"

#include "support/assert.hpp"

namespace bm {

Rng benchmark_rng(std::uint64_t base_seed, std::size_t index) {
  std::uint64_t mix = base_seed;
  (void)split_mix64(mix);
  mix ^= 0x5851F42D4C957F2Dull * (index + 1);
  return Rng(split_mix64(mix));
}

PointAggregate run_point(const GeneratorConfig& gen,
                         const SchedulerConfig& sched, const RunOptions& opt,
                         const PerBenchmarkHook& hook) {
  PointAggregate agg;
  for (std::size_t i = 0; i < opt.seeds; ++i) {
    Rng rng = benchmark_rng(opt.base_seed, i);
    const SynthesisResult synth = synthesize_benchmark(gen, rng);
    const InstrDag dag = InstrDag::build(synth.program, opt.timing);

    BenchmarkOutcome outcome;
    outcome.seed_index = i;
    outcome.program_size = synth.program.size();

    ScheduleResult scheduled = schedule_program(dag, sched, rng);
    outcome.stats = scheduled.stats;
    agg.fractions.add(scheduled.stats);
    agg.program_size.add(static_cast<double>(synth.program.size()));

    if (opt.with_vliw) {
      const VliwSchedule vliw = schedule_vliw(dag, sched.num_procs);
      outcome.vliw_makespan = vliw.makespan;
      agg.vliw_makespan.add(static_cast<double>(vliw.makespan));
    }

    if (opt.sim_runs > 0 || opt.validate_draws) {
      const std::size_t runs = opt.sim_runs > 0 ? opt.sim_runs : 1;
      if (opt.validate_draws) {
        for (std::size_t r = 0; r < runs; ++r) {
          const ExecTrace t = simulate(*scheduled.schedule,
                                       {sched.machine, SamplingMode::kUniform},
                                       rng);
          agg.violation_count += find_violations(dag, t).size();
        }
      }
      outcome.barrier_completion = summarize_completion(
          *scheduled.schedule, sched.machine, opt.sim_runs, rng);
      if (opt.with_vliw && outcome.vliw_makespan > 0) {
        const auto v = static_cast<double>(outcome.vliw_makespan);
        agg.norm_min.add(static_cast<double>(outcome.barrier_completion.min_draw) / v);
        agg.norm_max.add(static_cast<double>(outcome.barrier_completion.max_draw) / v);
        if (opt.sim_runs > 0)
          agg.norm_mean.add(outcome.barrier_completion.mean / v);
      }
    }

    if (hook) hook(outcome);
  }
  return agg;
}

}  // namespace bm
