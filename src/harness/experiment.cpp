#include "harness/experiment.hpp"

#include <vector>

#include "serve/session.hpp"
#include "support/assert.hpp"
#include "support/thread_pool.hpp"

namespace bm {

namespace {

/// Everything one seeded benchmark contributes to the point aggregate.
/// Computed independently per seed (the expensive part, safe to run on any
/// worker thread), then folded into PointAggregate strictly in seed order so
/// `--jobs N` is bit-identical to the serial run.
struct SeedResult {
  BenchmarkOutcome outcome;
  std::size_t violations = 0;
  std::size_t verify_errors = 0;
  std::string verify_first;  ///< first verifier diagnostic (error context)
};

SeedResult run_seed(const GeneratorConfig& gen, const SchedulerConfig& sched,
                    const RunOptions& opt, std::size_t i) {
  // One session per harness thread, in thread-shared arena mode: pipeline
  // working memory keeps flowing through the warm per-thread scratch pools
  // (tests/scratch_arena_test.cpp pins the zero-steady-state-allocation
  // behavior), while the serving path runs the very same session code with
  // per-session owned arenas.
  static thread_local serve::SchedulerSession session(
      serve::SchedulerSession::ArenaMode::kThreadShared);

  serve::BenchmarkRequest req;
  req.gen = gen;
  req.sched = sched;
  req.timing = opt.timing;
  req.base_seed = opt.base_seed;
  req.index = i;
  req.with_vliw = opt.with_vliw;
  req.sim_runs = opt.sim_runs;
  req.sim_batch = opt.sim_batch;
  req.validate_draws = opt.validate_draws;
  req.verify = opt.verify;
  const serve::BenchmarkResult b = session.run_benchmark(req);

  SeedResult r;
  r.outcome.seed_index = b.seed_index;
  r.outcome.program_size = b.program_size;
  r.outcome.stats = b.stats;
  r.outcome.vliw_makespan = b.vliw_makespan;
  r.outcome.barrier_completion = b.barrier_completion;
  r.violations = b.violations;
  r.verify_errors = b.verify_errors;
  r.verify_first = b.verify_first;
  return r;
}

/// The fold step. Performs the exact `.add()` sequence of the historical
/// serial loop; both the serial and the parallel path go through here, one
/// seed at a time, in seed order.
void accumulate(PointAggregate& agg, const SeedResult& r,
                const RunOptions& opt) {
  if (opt.verify) {
    ++agg.verified_schedules;
    agg.verify_errors += r.verify_errors;
  }
  agg.fractions.add(r.outcome.stats);
  agg.program_size.add(static_cast<double>(r.outcome.program_size));
  if (opt.with_vliw)
    agg.vliw_makespan.add(static_cast<double>(r.outcome.vliw_makespan));
  if (opt.sim_runs > 0 || opt.validate_draws) {
    agg.violation_count += r.violations;
    if (opt.with_vliw && r.outcome.vliw_makespan > 0) {
      const auto v = static_cast<double>(r.outcome.vliw_makespan);
      agg.norm_min.add(
          static_cast<double>(r.outcome.barrier_completion.min_draw) / v);
      agg.norm_max.add(
          static_cast<double>(r.outcome.barrier_completion.max_draw) / v);
      if (opt.sim_runs > 0)
        agg.norm_mean.add(r.outcome.barrier_completion.mean / v);
    }
  }
}

}  // namespace

PointAggregate run_point(const GeneratorConfig& gen,
                         const SchedulerConfig& sched, const RunOptions& opt,
                         const PerBenchmarkHook& hook) {
  PointAggregate agg;
  const std::size_t jobs =
      opt.jobs == 0 ? ThreadPool::default_jobs() : opt.jobs;

  std::string first_verify_error;
  auto note_verify = [&](const SeedResult& r) {
    if (first_verify_error.empty() && !r.verify_first.empty())
      first_verify_error = r.verify_first;
  };
  // A verifier error is a scheduler soundness bug, never a data point:
  // surface it as a hard failure once every seed has been folded (so the
  // error message can report the full count, not just the first seed).
  auto check_verify = [&]() {
    if (!opt.verify || agg.verify_errors == 0) return;
    throw Error("schedule verification failed: " +
                std::to_string(agg.verify_errors) + " error(s) across " +
                std::to_string(agg.verified_schedules) +
                " schedule(s); first: " + first_verify_error);
  };

  if (jobs <= 1 || opt.seeds <= 1) {
    for (std::size_t i = 0; i < opt.seeds; ++i) {
      const SeedResult r = run_seed(gen, sched, opt, i);
      accumulate(agg, r, opt);
      note_verify(r);
      if (hook) hook(r.outcome);
    }
    check_verify();
    return agg;
  }

  // Fan the seeds out; each worker owns a disjoint set of indices and every
  // seed derives its own RNG stream from (base_seed, i), so workers share no
  // mutable state. Results are folded in seed order afterwards.
  std::vector<SeedResult> results(opt.seeds);
  parallel_for_jobs(jobs, opt.seeds, [&](std::size_t i) {
    results[i] = run_seed(gen, sched, opt, i);
  });
  for (const SeedResult& r : results) {
    accumulate(agg, r, opt);
    note_verify(r);
    if (hook) hook(r.outcome);
  }
  check_verify();
  return agg;
}

}  // namespace bm
