// Experiment driver: one "point" = one (generator, scheduler) parameter
// combination evaluated over many seeded synthetic benchmarks, exactly as in
// §5 (100 benchmarks per point, results averaged). Optionally also runs the
// VLIW baseline and the execution simulator per benchmark.
#pragma once

#include <functional>

#include "codegen/synthesize.hpp"
#include "metrics/aggregate.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"
#include "support/stats.hpp"
#include "vliw/vliw.hpp"

namespace bm {

struct RunOptions {
  std::size_t seeds = 100;          ///< benchmarks per point (paper: 100)
  std::uint64_t base_seed = 1990;   ///< printed by every bench header
  TimingModel timing = TimingModel::table1();
  /// Worker threads for the seed fan-out (0 = one per hardware thread).
  /// Results are bit-identical to the serial run for every value: each seed
  /// computes on its own RNG stream and aggregates merge in seed order.
  std::size_t jobs = 1;

  bool with_vliw = false;           ///< also schedule the VLIW baseline
  std::size_t sim_runs = 0;         ///< uniform-draw simulations per benchmark
  /// Lanes per batched simulation of the uniform draws (0 = scalar). Every
  /// width is bit-identical — the batch engine consumes the rng in serial
  /// draw order — so this is a pure throughput knob, composing with `jobs`
  /// (lanes within a seed, workers across seeds).
  std::size_t sim_batch = kDefaultSimBatch;
  bool validate_draws = false;      ///< assert no dependence violations

  /// Run the static verifier (src/verify) on every schedule. Any verifier
  /// *error* is a scheduler soundness bug: run_point throws bm::Error after
  /// folding, carrying the first diagnostic.
  bool verify = false;
};

/// Everything measured for one benchmark instance.
struct BenchmarkOutcome {
  std::size_t seed_index = 0;
  std::size_t program_size = 0;       ///< optimized tuple count
  ScheduleStats stats;
  Time vliw_makespan = 0;             ///< when with_vliw
  CompletionSummary barrier_completion;  ///< when sim_runs > 0
};

struct PointAggregate {
  FractionAggregate fractions;
  RunningStats program_size;
  RunningStats vliw_makespan;
  /// Barrier-machine completion normalized to the VLIW makespan (Fig. 18):
  /// the all-min draw, all-max draw, and simulated mean.
  RunningStats norm_min, norm_max, norm_mean;
  std::size_t violation_count = 0;  ///< across all validated draws (expect 0)
  std::size_t verified_schedules = 0;  ///< schedules verified (opt.verify)
  std::size_t verify_errors = 0;       ///< verifier errors across the point
};

using PerBenchmarkHook = std::function<void(const BenchmarkOutcome&)>;

/// Runs one parameter point. The i-th benchmark uses an independent stream
/// derived from (base_seed, i), so points are reproducible and extensible.
PointAggregate run_point(const GeneratorConfig& gen,
                         const SchedulerConfig& sched, const RunOptions& opt,
                         const PerBenchmarkHook& hook = nullptr);

/// Per-benchmark RNG stream used by run_point (exposed for tests/examples).
Rng benchmark_rng(std::uint64_t base_seed, std::size_t index);

}  // namespace bm
