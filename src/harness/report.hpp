// Shared report formatting for the bench binaries: headers, fraction-series
// tables, CSV dumps, and a text scatter plot (Fig. 14).
#pragma once

#include <string>
#include <vector>

#include "harness/artifacts.hpp"
#include "harness/experiment.hpp"
#include "support/table.hpp"

namespace bm {

/// Prints the bench banner: experiment id, paper reference, configuration,
/// and the base seed so every run is reproducible.
void print_bench_header(const std::string& experiment,
                        const std::string& paper_ref,
                        const std::string& workload, const RunOptions& opt);

/// One row of a fraction-series table.
struct SeriesRow {
  std::string x;  ///< the sweep value (e.g. "#statements = 20")
  PointAggregate agg;
};

/// Renders the standard fraction columns (mean over seeds) for a sweep.
/// When `artifacts` is non-null, also writes `<stem>.csv` into the artifact
/// directory and records the per-row fractions as JSON metrics; pass null
/// to print only (e.g. interactive exploration).
void print_fraction_series(const std::string& x_label,
                           const std::vector<SeriesRow>& rows,
                           ArtifactWriter* artifacts,
                           const std::string& stem = "");

/// ASCII scatter plot: y = serialized fraction, x = static fraction, both in
/// [0,1]; `diagonal` draws the x+y = level reference line.
std::string render_scatter(const std::vector<std::pair<double, double>>& xy,
                           double diagonal_level, std::size_t width = 61,
                           std::size_t height = 25);

}  // namespace bm
