#include "harness/artifacts.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "support/assert.hpp"

namespace bm {
namespace {

std::string render_number(double v) {
  if (!std::isfinite(v)) return "null";  // NaN/inf are not valid JSON
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

ArtifactWriter::ArtifactWriter(std::string dir, std::string experiment)
    : dir_(std::move(dir)), experiment_(std::move(experiment)) {
  BM_REQUIRE(!dir_.empty(), "artifact directory must not be empty");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  BM_REQUIRE(!ec, "cannot create artifact directory " + dir_ + ": " +
                      ec.message());
}

std::string ArtifactWriter::csv_path(const std::string& stem) {
  files_.push_back((stem.empty() ? experiment_ : stem) + ".csv");
  return (std::filesystem::path(dir_) / files_.back()).string();
}

void ArtifactWriter::metric(const std::string& key, double value) {
  metrics_.push_back({key, render_number(value)});
}

void ArtifactWriter::metric(const std::string& key, const std::string& value) {
  metrics_.push_back({key, json_quote(value)});
}

void ArtifactWriter::write_json(
    const std::vector<std::pair<std::string, std::string>>& info) const {
  const std::filesystem::path path =
      std::filesystem::path(dir_) / (experiment_ + ".json");
  std::ofstream os(path);
  BM_REQUIRE(os.good(), "cannot open " + path.string() + " for writing");
  os << "{\n  \"experiment\": " << json_quote(experiment_) << ",\n";
  os << "  \"info\": {";
  for (std::size_t i = 0; i < info.size(); ++i) {
    os << (i ? ",\n           " : "\n           ")
       << json_quote(info[i].first) << ": " << json_quote(info[i].second);
  }
  os << "\n  },\n";
  os << "  \"metrics\": {";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    os << (i ? ",\n              " : "\n              ")
       << json_quote(metrics_[i].key) << ": " << metrics_[i].rendered;
  }
  os << "\n  },\n";
  os << "  \"artifacts\": [";
  for (std::size_t i = 0; i < files_.size(); ++i) {
    os << (i ? ", " : "") << json_quote(files_[i]);
  }
  os << "]\n}\n";
  BM_REQUIRE(os.good(), "failed writing " + path.string());
}

}  // namespace bm
