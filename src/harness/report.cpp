#include "harness/report.hpp"

#include <cmath>
#include <iostream>

namespace bm {

void print_bench_header(const std::string& experiment,
                        const std::string& paper_ref,
                        const std::string& workload, const RunOptions& opt) {
  std::cout << "================================================================\n"
            << experiment << '\n'
            << "Reproduces: " << paper_ref
            << " — Zaafrani, Dietz, O'Keefe, \"Static Scheduling for Barrier"
               " MIMD Architectures\" (1990)\n"
            << "Workload:   " << workload << '\n'
            << "Seeds:      " << opt.seeds << " benchmarks per point, base seed "
            << opt.base_seed << '\n'
            << "Jobs:       "
            << (opt.jobs == 0 ? std::string("auto")
                              : std::to_string(opt.jobs))
            << " worker(s), bit-identical to serial\n"
            << "================================================================\n";
}

void print_fraction_series(const std::string& x_label,
                           const std::vector<SeriesRow>& rows,
                           ArtifactWriter* artifacts,
                           const std::string& stem) {
  TextTable table({x_label, "barrier", "serialized", "static", "no-runtime",
                   "barriers/blk", "syncs/blk", "PEs used", "compl [min,max]"});
  for (const SeriesRow& row : rows) {
    const FractionAggregate& f = row.agg.fractions;
    table.add_row({row.x, TextTable::pct(f.barrier_frac.mean()),
                   TextTable::pct(f.serialized_frac.mean()),
                   TextTable::pct(f.static_frac.mean()),
                   TextTable::pct(f.no_runtime_frac.mean()),
                   TextTable::num(f.barriers.mean(), 2),
                   TextTable::num(f.implied_syncs.mean(), 1),
                   TextTable::num(f.procs_used.mean(), 1),
                   "[" + TextTable::num(f.completion_min.mean(), 1) + "," +
                       TextTable::num(f.completion_max.mean(), 1) + "]"});
  }
  table.render(std::cout);

  if (artifacts == nullptr) return;
  const std::string csv_path = artifacts->csv_path(stem);
  CsvWriter csv(csv_path);
  csv.write_row({x_label, "barrier_frac", "serialized_frac", "static_frac",
                 "no_runtime_frac", "barriers", "implied_syncs", "procs_used",
                 "completion_min", "completion_max"});
  for (const SeriesRow& row : rows) {
    const FractionAggregate& f = row.agg.fractions;
    csv.write_row({row.x, std::to_string(f.barrier_frac.mean()),
                   std::to_string(f.serialized_frac.mean()),
                   std::to_string(f.static_frac.mean()),
                   std::to_string(f.no_runtime_frac.mean()),
                   std::to_string(f.barriers.mean()),
                   std::to_string(f.implied_syncs.mean()),
                   std::to_string(f.procs_used.mean()),
                   std::to_string(f.completion_min.mean()),
                   std::to_string(f.completion_max.mean())});
  }
  for (const SeriesRow& row : rows) {
    const FractionAggregate& f = row.agg.fractions;
    const std::string key = x_label + "=" + row.x;
    artifacts->metric(key + ".barrier_frac", f.barrier_frac.mean());
    artifacts->metric(key + ".serialized_frac", f.serialized_frac.mean());
    artifacts->metric(key + ".static_frac", f.static_frac.mean());
    artifacts->metric(key + ".no_runtime_frac", f.no_runtime_frac.mean());
  }
  std::cout << "(series written to " << csv_path << ")\n";
}

std::string render_scatter(const std::vector<std::pair<double, double>>& xy,
                           double diagonal_level, std::size_t width,
                           std::size_t height) {
  std::vector<std::string> grid(height, std::string(width, ' '));
  auto to_col = [&](double x) {
    return std::min(width - 1, static_cast<std::size_t>(x * static_cast<double>(width)));
  };
  auto to_row = [&](double y) {
    const auto r = static_cast<std::size_t>((1.0 - y) * static_cast<double>(height));
    return std::min(height - 1, r);
  };
  // Reference line x + y = diagonal_level.
  for (std::size_t c = 0; c < width; ++c) {
    const double x = (static_cast<double>(c) + 0.5) / static_cast<double>(width);
    const double y = diagonal_level - x;
    if (y < 0.0 || y > 1.0) continue;
    grid[to_row(y)][c] = '.';
  }
  for (const auto& [x, y] : xy) {
    if (x < 0 || x > 1 || y < 0 || y > 1) continue;
    char& cell = grid[to_row(y)][to_col(x)];
    if (cell == ' ' || cell == '.')
      cell = '*';
    else if (cell == '*')
      cell = 'o';
    else if (cell == 'o')
      cell = '@';
  }
  std::string out;
  out += "serialized fraction (vertical, 0..1) vs static fraction "
         "(horizontal, 0..1); '.' marks x+y=" +
         TextTable::num(diagonal_level, 2) + "\n";
  for (std::size_t r = 0; r < height; ++r) {
    out += '|';
    out += grid[r];
    out += "|\n";
  }
  out += '+' + std::string(width, '-') + "+\n";
  return out;
}

}  // namespace bm
