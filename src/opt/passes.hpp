// Standard local optimizations applied to generated blocks (§2.2): constant
// folding, algebraic simplification (value propagation), common
// subexpression elimination, and dead code elimination. These remove the
// "redundant parallelism that might skew the results".
#pragma once

#include <cstddef>

#include "ir/program.hpp"

namespace bm {

struct OptStats {
  std::size_t folded = 0;      ///< tuples replaced by constants
  std::size_t simplified = 0;  ///< algebraic identities applied
  std::size_t cse = 0;         ///< tuples removed as common subexpressions
  std::size_t dead = 0;        ///< tuples removed as dead code

  std::size_t total_removed() const { return folded + simplified + cse + dead; }
};

struct OptOptions {
  /// Also apply algebraic identities (x+0, x−x, x*1, x&x, ...). Off by
  /// default: §2.2 lists only CSE, constant folding, value propagation, and
  /// dead code elimination, and with few variables the identities collapse
  /// whole blocks (Sub a,a → 0 cascades through constant folding), which
  /// would starve the scheduling experiments of work.
  bool algebraic = false;
};

/// One forward rewriting pass: folding + CSE (+ algebraic identities when
/// enabled). Removed tuples' uses are rewritten to their replacement
/// operand. The program remains valid (validate() passes) afterwards.
OptStats forward_rewrite(Program& prog, const OptOptions& options = {});

/// Removes tuples whose results are unobservable. The roots are the last
/// Store of each variable (block memory outputs); everything not reachable
/// from a root through operand edges is dropped, including superseded stores
/// and unused loads.
std::size_t dead_code_eliminate(Program& prog);

/// Full pipeline to fixpoint. Returns accumulated stats.
OptStats optimize(Program& prog, const OptOptions& options = {});

}  // namespace bm
