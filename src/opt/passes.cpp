#include "opt/passes.hpp"

#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "support/assert.hpp"

namespace bm {

namespace {

/// Key for value numbering: opcode + canonicalized operands. Operands are
/// encoded as (is_const, value) pairs; commutative operations sort them.
using ValueKey =
    std::tuple<Opcode, bool, std::int64_t, bool, std::int64_t, VarId>;

ValueKey make_key(const Tuple& t) {
  if (t.is_load()) return {t.op, false, 0, false, 0, t.var};
  std::pair<bool, std::int64_t> a{t.lhs.is_const(), t.lhs.value};
  std::pair<bool, std::int64_t> b{t.rhs.is_const(), t.rhs.value};
  if (is_commutative(t.op) && b < a) std::swap(a, b);
  return {t.op, a.first, a.second, b.first, b.second, 0};
}

bool is_const_val(const Operand& o, std::int64_t v) {
  return o.is_const() && o.const_value() == v;
}

/// Algebraic identities (value propagation). Returns the operand the tuple
/// simplifies to, if any.
std::optional<Operand> simplify(const Tuple& t) {
  if (!t.is_binary()) return std::nullopt;
  const Operand& a = t.lhs;
  const Operand& b = t.rhs;
  const bool same = a == b;
  switch (t.op) {
    case Opcode::kAdd:
      if (is_const_val(a, 0)) return b;
      if (is_const_val(b, 0)) return a;
      break;
    case Opcode::kSub:
      if (is_const_val(b, 0)) return a;
      if (same) return Operand::constant(0);
      break;
    case Opcode::kMul:
      if (is_const_val(a, 1)) return b;
      if (is_const_val(b, 1)) return a;
      if (is_const_val(a, 0) || is_const_val(b, 0)) return Operand::constant(0);
      break;
    case Opcode::kDiv:
      if (is_const_val(b, 1)) return a;
      if (is_const_val(a, 0)) return Operand::constant(0);
      break;
    case Opcode::kMod:
      if (is_const_val(b, 1)) return Operand::constant(0);
      if (is_const_val(a, 0)) return Operand::constant(0);
      break;
    case Opcode::kAnd:
      if (same) return a;
      if (is_const_val(a, 0) || is_const_val(b, 0)) return Operand::constant(0);
      break;
    case Opcode::kOr:
      if (same) return a;
      if (is_const_val(a, 0)) return b;
      if (is_const_val(b, 0)) return a;
      break;
    default:
      break;
  }
  return std::nullopt;
}

}  // namespace

OptStats forward_rewrite(Program& prog, const OptOptions& options) {
  OptStats stats;
  std::vector<Tuple> out;
  out.reserve(prog.size());
  // For each old tuple id: its replacement operand (a new-id tuple ref or a
  // constant).
  std::vector<Operand> result(prog.size());
  std::map<ValueKey, TupleId> seen;  // value numbering over kept tuples

  auto resolve = [&](Operand o) -> Operand {
    if (o.is_tuple()) return result[o.tuple_id()];
    return o;
  };

  for (std::size_t i = 0; i < prog.size(); ++i) {
    Tuple t = prog[i];
    for (int k = 0; k < t.operand_count(); ++k)
      t.operand(k) = resolve(t.operand(k));

    if (t.is_binary() && t.lhs.is_const() && t.rhs.is_const()) {
      result[i] = Operand::constant(
          fold_binary(t.op, t.lhs.const_value(), t.rhs.const_value()));
      ++stats.folded;
      continue;
    }
    if (options.algebraic) {
      if (auto simplified = simplify(t)) {
        result[i] = *simplified;
        ++stats.simplified;
        continue;
      }
    }
    if (!t.is_store()) {
      const ValueKey key = make_key(t);
      const auto it = seen.find(key);
      if (it != seen.end()) {
        result[i] = Operand::tuple(it->second);
        ++stats.cse;
        continue;
      }
      const auto new_id = static_cast<TupleId>(out.size());
      seen.emplace(key, new_id);
      result[i] = Operand::tuple(new_id);
      out.push_back(t);
      continue;
    }
    // Store: kept as-is (no value produced).
    result[i] = Operand::constant(0);  // never referenced
    out.push_back(t);
  }
  prog.replace_all(std::move(out));
  return stats;
}

std::size_t dead_code_eliminate(Program& prog) {
  const std::size_t n = prog.size();
  std::vector<bool> live(n, false);

  // Roots: the last store of each variable is the block's observable output.
  std::vector<std::optional<std::size_t>> last_store(prog.num_vars());
  for (std::size_t i = 0; i < n; ++i)
    if (prog[i].is_store()) last_store[prog[i].var] = i;
  for (const auto& idx : last_store)
    if (idx) live[*idx] = true;

  // Backward propagation through operand edges.
  for (std::size_t i = n; i-- > 0;) {
    if (!live[i]) continue;
    const Tuple& t = prog[i];
    for (int k = 0; k < t.operand_count(); ++k)
      if (t.operand(k).is_tuple()) live[t.operand(k).tuple_id()] = true;
  }

  std::vector<Tuple> out;
  out.reserve(n);
  std::vector<TupleId> remap(n, kInvalidTuple);
  for (std::size_t i = 0; i < n; ++i) {
    if (!live[i]) continue;
    Tuple t = prog[i];
    for (int k = 0; k < t.operand_count(); ++k) {
      Operand& o = t.operand(k);
      if (o.is_tuple()) {
        BM_ASSERT_INTERNAL(remap[o.tuple_id()] != kInvalidTuple,
                           "live tuple references dead tuple");
        o = Operand::tuple(remap[o.tuple_id()]);
      }
    }
    remap[i] = static_cast<TupleId>(out.size());
    out.push_back(t);
  }
  const std::size_t removed = n - out.size();
  prog.replace_all(std::move(out));
  return removed;
}

OptStats optimize(Program& prog, const OptOptions& options) {
  OptStats total;
  for (;;) {
    const OptStats s = forward_rewrite(prog, options);
    const std::size_t dead = dead_code_eliminate(prog);
    total.folded += s.folded;
    total.simplified += s.simplified;
    total.cse += s.cse;
    total.dead += dead;
    if (s.total_removed() + dead == 0) break;
  }
  prog.validate();
  return total;
}

}  // namespace bm
