#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <mutex>

#include "support/assert.hpp"

namespace bm::obs {
namespace {

/// Name → dense-id table per metric kind. Ids are append-only, so handles
/// never dangle and shards can be fixed-size flat arrays.
struct NameTable {
  std::mutex mu;
  std::vector<std::string> counters, gauges, histograms;
};

NameTable& names() {
  static NameTable t;
  return t;
}

std::uint32_t intern(std::vector<std::string>& v, std::string_view name,
                     std::size_t cap, const char* kind) {
  BM_REQUIRE(!name.empty(), "metric name must not be empty");
  for (std::size_t i = 0; i < v.size(); ++i)
    if (v[i] == name) return static_cast<std::uint32_t>(i);
  BM_REQUIRE(v.size() < cap,
             std::string("too many registered ") + kind + " metrics");
  v.emplace_back(name);
  return static_cast<std::uint32_t>(v.size() - 1);
}

/// One thread's private cells. Owner-thread writes are relaxed atomic adds;
/// the snapshotting thread reads the same atomics, so aggregation needs no
/// stop-the-world. On thread exit the shard folds itself into the retired
/// totals and unregisters.
struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  /// Full bucketed distribution per histogram; count/sum for the snapshot
  /// come from the same cells, so the two exports can never disagree.
  std::array<LatencyHistogram, kMaxHistograms> hists{};

  Shard();
  ~Shard();
};

struct Global {
  std::mutex mu;
  std::vector<Shard*> shards;
  std::array<std::uint64_t, kMaxCounters> retired_counters{};
  std::array<LatencyBuckets, kMaxHistograms> retired_hists{};
  std::array<std::atomic<std::int64_t>, kMaxGauges> gauges{};
};

Global& global() {
  static Global g;
  return g;
}

Shard::Shard() {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  g.shards.push_back(this);
}

Shard::~Shard() {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  // mo: reading our own thread's cells at thread exit; the registry lock
  // above orders this fold against concurrent snapshots.
  for (std::size_t i = 0; i < kMaxCounters; ++i)
    g.retired_counters[i] += counters[i].load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kMaxHistograms; ++i)
    g.retired_hists[i].merge(hists[i].snapshot());
  g.shards.erase(std::find(g.shards.begin(), g.shards.end(), this));
}

Shard& local_shard() {
  // Function-local so the Global registry is constructed first and
  // destroyed last (shards deregister themselves on thread exit).
  thread_local Shard shard;
  return shard;
}

}  // namespace

void Counter::add(std::uint64_t n) const {
  // mo: per-thread shard cell, only snapshot() reads it cross-thread and
  // tolerates bounded staleness; no data is published through counters.
  local_shard().counters[id_].fetch_add(n, std::memory_order_relaxed);
}

void Gauge::set(std::int64_t v) const {
  // mo: last-writer-wins gauge cell; readers need no ordering with it.
  global().gauges[id_].store(v, std::memory_order_relaxed);
}

void Histogram::observe(std::uint64_t v) const {
  local_shard().hists[id_].observe(v);
}

void Histogram::observe_n(std::uint64_t count, std::uint64_t sum) const {
  local_shard().hists[id_].fold(count, sum);
}

Counter counter(std::string_view name) {
  NameTable& t = names();
  std::lock_guard<std::mutex> lock(t.mu);
  return Counter(intern(t.counters, name, kMaxCounters, "counter"));
}

Gauge gauge(std::string_view name) {
  NameTable& t = names();
  std::lock_guard<std::mutex> lock(t.mu);
  return Gauge(intern(t.gauges, name, kMaxGauges, "gauge"));
}

Histogram histogram(std::string_view name) {
  NameTable& t = names();
  std::lock_guard<std::mutex> lock(t.mu);
  return Histogram(intern(t.histograms, name, kMaxHistograms, "histogram"));
}

double Snapshot::get(std::string_view key, double def) const {
  for (const Entry& e : entries)
    if (e.key == key) return e.value;
  return def;
}

Snapshot snapshot() {
  // Copy the name table first (its own lock), then aggregate under the
  // shard-list lock; relaxed loads race benignly with in-flight adds.
  std::vector<std::string> cnames, gnames, hnames;
  {
    NameTable& t = names();
    std::lock_guard<std::mutex> lock(t.mu);
    cnames = t.counters;
    gnames = t.gauges;
    hnames = t.histograms;
  }

  std::vector<std::uint64_t> csum(cnames.size(), 0);
  std::vector<std::uint64_t> hcount(hnames.size(), 0), hsum(hnames.size(), 0);
  std::vector<std::int64_t> gval(gnames.size(), 0);
  {
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    for (std::size_t i = 0; i < cnames.size(); ++i)
      csum[i] = g.retired_counters[i];
    for (std::size_t i = 0; i < hnames.size(); ++i) {
      hcount[i] = g.retired_hists[i].count;
      hsum[i] = g.retired_hists[i].sum;
    }
    for (const Shard* s : g.shards) {
      // mo: snapshot read of live shard cells; documented as a bounded-
      // staleness view, counters publish no other data.
      for (std::size_t i = 0; i < cnames.size(); ++i)
        csum[i] += s->counters[i].load(std::memory_order_relaxed);
      for (std::size_t i = 0; i < hnames.size(); ++i) {
        hcount[i] += s->hists[i].count();
        hsum[i] += s->hists[i].sum();
      }
    }
    // mo: last-writer-wins gauge cells (see Gauge::set).
    for (std::size_t i = 0; i < gnames.size(); ++i)
      gval[i] = g.gauges[i].load(std::memory_order_relaxed);
  }

  Snapshot out;
  for (std::size_t i = 0; i < cnames.size(); ++i)
    out.entries.push_back({cnames[i], static_cast<double>(csum[i]), true});
  for (std::size_t i = 0; i < gnames.size(); ++i)
    out.entries.push_back({gnames[i], static_cast<double>(gval[i]), false});
  for (std::size_t i = 0; i < hnames.size(); ++i) {
    out.entries.push_back(
        {hnames[i] + ".count", static_cast<double>(hcount[i]), true});
    out.entries.push_back(
        {hnames[i] + ".sum", static_cast<double>(hsum[i]), true});
  }
  std::sort(out.entries.begin(), out.entries.end(),
            [](const Snapshot::Entry& a, const Snapshot::Entry& b) {
              return a.key < b.key;
            });
  return out;
}

LatencyBuckets histogram_buckets(std::string_view name) {
  // Lookup only — an unregistered name yields an empty distribution rather
  // than registering a slot a reader typo'd into existence.
  std::size_t id = kMaxHistograms;
  {
    NameTable& t = names();
    std::lock_guard<std::mutex> lock(t.mu);
    for (std::size_t i = 0; i < t.histograms.size(); ++i)
      if (t.histograms[i] == name) {
        id = i;
        break;
      }
  }
  LatencyBuckets out;
  if (id == kMaxHistograms) return out;

  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  out = g.retired_hists[id];
  for (const Shard* s : g.shards) out.merge(s->hists[id].snapshot());
  return out;
}

Snapshot delta(const Snapshot& before, const Snapshot& after) {
  Snapshot out;
  for (const Snapshot::Entry& e : after.entries) {
    Snapshot::Entry d = e;
    if (e.monotonic) {
      d.value = e.value - before.get(e.key, 0);
      if (d.value == 0) continue;  // untouched by this run
    }
    out.entries.push_back(d);
  }
  return out;
}

}  // namespace bm::obs
