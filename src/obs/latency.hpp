// Lock-free log-bucketed latency histograms for the serving stack.
//
// Unlike the registry histograms in obs/metrics.hpp (deterministic
// quantities only, exported as count/sum into experiment manifests), these
// record *wall-clock* durations and are therefore never embedded in a
// manifest: serving telemetry reads them on demand through the `stats v1`
// verb, SIGUSR1 dumps, and the `serve-metrics.*` gauge namespace, all of
// which are excluded from `--jobs` byte-identity.
//
// Bucketing: values 0..15 get exact unit buckets; above that each octave
// splits into 4 sub-buckets (two mantissa bits), i.e. a relative bucket
// width of 12.5–25%. 256 buckets cover the full uint64 range, so a
// microsecond-stamped request can span nanoscale cache hits to multi-hour
// outliers without configuration.
//
// Three layers:
//   LatencyBuckets          — plain value type: merge, quantile, mean.
//   LatencyHistogram        — atomic cells, wait-free relaxed observe();
//                             snapshot() is a racy-but-consistent-enough
//                             copy (each cell individually atomic).
//   WindowedLatencyHistogram— N rotating slots of LatencyHistogram keyed
//                             by epoch = now / slot_width; quantiles over
//                             the trailing window, for "p99 right now"
//                             dashboards as opposed to since-boot totals.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace bm::obs {

inline constexpr std::size_t kLatencyBuckets = 256;

/// Bucket index for a value: exact below 16, then 4 sub-buckets per octave.
constexpr std::size_t latency_bucket(std::uint64_t v) {
  if (v < 16) return static_cast<std::size_t>(v);
  const int e = 63 - std::countl_zero(v);
  const auto sub = static_cast<std::size_t>((v >> (e - 2)) & 3);
  return 16 + static_cast<std::size_t>(e - 4) * 4 + sub;
}

/// Smallest value mapping to bucket `b`.
constexpr std::uint64_t latency_bucket_lower(std::size_t b) {
  if (b < 16) return b;
  const int e = 4 + static_cast<int>((b - 16) / 4);
  const std::uint64_t sub = (b - 16) % 4;
  return (4 + sub) << (e - 2);
}

/// Largest value mapping to bucket `b` (saturates for the top bucket).
constexpr std::uint64_t latency_bucket_upper(std::size_t b) {
  if (b < 16) return b;
  if (b == kLatencyBuckets - 1) return ~0ull;
  return latency_bucket_lower(b + 1) - 1;
}

/// Plain (non-atomic) bucket counts plus exact count/sum/max. The value
/// type every reader works with: snapshots, merges across shards or window
/// slots, quantile extraction.
struct LatencyBuckets {
  std::array<std::uint64_t, kLatencyBuckets> counts{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  void add(std::uint64_t v) {
    ++counts[latency_bucket(v)];
    ++count;
    sum += v;
    if (v > max) max = v;
  }

  void merge(const LatencyBuckets& other) {
    for (std::size_t i = 0; i < kLatencyBuckets; ++i)
      counts[i] += other.counts[i];
    count += other.count;
    sum += other.sum;
    if (other.max > max) max = other.max;
  }

  /// Upper bound of the bucket holding the q-quantile rank (exact for
  /// values < 16, within one sub-bucket — ≤25% — above), clamped to the
  /// exact observed max. q in [0,1]; 0 with no observations.
  std::uint64_t quantile(double q) const;

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Lock-free histogram: observe() is a handful of relaxed atomic adds on
/// the caller, safe from any thread; snapshot() may run concurrently.
class LatencyHistogram {
 public:
  void observe(std::uint64_t v) {
    // mo: independent tally cells; readers tolerate torn cross-cell state
    // (snapshot() is documented racy-but-consistent-enough), no ordering
    // is published through these counters.
    counts_[latency_bucket(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    update_max(v);
  }

  /// Folds `n` observations totalling `total` in one call, credited to the
  /// mean-value bucket (the count/sum pair stays exact; the distribution
  /// and max are approximated at the mean). Mirrors the registry
  /// histograms' observe_n so per-event hot paths can tally locally.
  void fold(std::uint64_t n, std::uint64_t total) {
    if (n == 0) return;
    const std::uint64_t avg = total / n;
    // mo: same tally-cell contract as observe() — no cross-cell ordering.
    counts_[latency_bucket(avg)].fetch_add(n, std::memory_order_relaxed);
    count_.fetch_add(n, std::memory_order_relaxed);
    sum_.fetch_add(total, std::memory_order_relaxed);
    update_max(avg);
  }

  LatencyBuckets snapshot() const {
    LatencyBuckets out;
    // mo: each cell is individually atomic; the copy is allowed to tear
    // across cells (documented), so no acquire pairing is needed.
    for (std::size_t i = 0; i < kLatencyBuckets; ++i)
      out.counts[i] = counts_[i].load(std::memory_order_relaxed);
    out.count = count_.load(std::memory_order_relaxed);
    out.sum = sum_.load(std::memory_order_relaxed);
    out.max = max_.load(std::memory_order_relaxed);
    return out;
  }

  std::uint64_t count() const {
    // mo: monotonic gauge read; staleness is fine, nothing piggybacks.
    return count_.load(std::memory_order_relaxed);
  }
  // mo: monotonic gauge read; staleness is fine, nothing piggybacks.
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Zeroes every cell. Concurrent observers may interleave (window-slot
  /// rotation accepts that bounded raciness); not for use while a reader
  /// needs exact totals.
  void reset() {
    // mo: callers that need the zeroes visible before reuse publish them
    // themselves (the window-slot claimant release-stores its epoch after
    // reset() returns); cell-by-cell zeroing needs no ordering of its own.
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void update_max(std::uint64_t v) {
    // mo: standalone monotonic max cell — the CAS loop only needs atomicity
    // of the compare-and-swap itself, not ordering against other cells.
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<std::uint64_t>, kLatencyBuckets> counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Trailing-window quantiles: kSlots rotating LatencyHistograms, each
/// owning epoch = now / slot_width. An observation lands in slot
/// (epoch % kSlots); the first observer of a new epoch claims the slot
/// (CAS to the kClaiming sentinel), resets it, then publishes the new
/// epoch with a release store. Observers that find the slot mid-claim spin
/// until the epoch is published, so a rotation never wipes a concurrent
/// observation from the same epoch. window() merges the slots whose epoch
/// is within the trailing kSlots epochs of `now`.
///
/// Remaining (accepted) raciness: an observer whose timestamp is a full
/// window (kSlots epochs) stale can have its single observation erased by
/// the next claimant of the same slot. The window is a dashboard quantity —
/// the since-boot LatencyHistogram next to it stays exact. This slot
/// protocol is model-checked in tests/interleave_test.cpp, including the
/// seeded-bug variants (plain-store claim, publish-before-reset).
class WindowedLatencyHistogram {
 public:
  static constexpr std::size_t kSlots = 8;

  explicit WindowedLatencyHistogram(std::uint64_t slot_width_us = 1000000)
      : slot_width_us_(slot_width_us == 0 ? 1 : slot_width_us) {}

  void observe(std::uint64_t now_us, std::uint64_t v) {
    const std::uint64_t epoch = now_us / slot_width_us_;
    Slot& s = slots_[epoch % kSlots];
    // mo: acquire pairs with the claimant's release publish below — an
    // observer that reads the published epoch also sees the reset done.
    std::uint64_t cur = s.epoch.load(std::memory_order_acquire);
    while (cur != epoch) {
      if (cur == kClaiming) {
        // Another thread is between claim and publish; wait it out. The
        // claimant's critical section is a bounded reset, no locks held.
        // mo: acquire — same pairing as the initial load.
        cur = s.epoch.load(std::memory_order_acquire);
        continue;
      }
      // mo: acquire on success orders our reset after whatever the prior
      // epoch's claimant published; failure reloads for the retry.
      if (s.epoch.compare_exchange_weak(cur, kClaiming,
                                        std::memory_order_acquire,
                                        std::memory_order_acquire)) {
        s.hist.reset();
        // mo: release publishes the completed reset to spinning observers.
        s.epoch.store(epoch, std::memory_order_release);
        cur = epoch;
      }
    }
    s.hist.observe(v);
  }

  /// Merged distribution over the trailing window ending at `now_us`.
  LatencyBuckets window(std::uint64_t now_us) const {
    const std::uint64_t cur = now_us / slot_width_us_;
    LatencyBuckets out;
    for (const Slot& s : slots_) {
      // mo: acquire pairs with the claimant's release publish, so a slot
      // seen with a real epoch is seen post-reset. kClaiming and kIdle
      // both fail the `e > cur` / kIdle guards and are skipped.
      const std::uint64_t e = s.epoch.load(std::memory_order_acquire);
      if (e == kIdle || e > cur || cur - e >= kSlots) continue;
      out.merge(s.hist.snapshot());
    }
    return out;
  }

  std::uint64_t span_us() const { return slot_width_us_ * kSlots; }

 private:
  static constexpr std::uint64_t kIdle = ~0ull;
  /// Slot is between claim and epoch publish (reset in progress).
  static constexpr std::uint64_t kClaiming = ~0ull - 1;

  struct Slot {
    std::atomic<std::uint64_t> epoch{kIdle};
    LatencyHistogram hist;
  };

  std::uint64_t slot_width_us_;
  std::array<Slot, kSlots> slots_;
};

}  // namespace bm::obs
