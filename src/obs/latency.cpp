#include "obs/latency.hpp"

namespace bm::obs {

std::uint64_t LatencyBuckets::quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(q * count), clamped to [1, count].
  auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
  if (static_cast<double>(rank) < q * static_cast<double>(count)) ++rank;
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;

  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kLatencyBuckets; ++b) {
    cum += counts[b];
    if (cum >= rank) {
      const std::uint64_t upper = latency_bucket_upper(b);
      return upper < max ? upper : max;
    }
  }
  return max;  // unreachable when counts/count agree
}

}  // namespace bm::obs
