// Low-overhead metric registries: named Counters, Gauges, and Histograms
// with thread-local sharding. Increments touch only the calling thread's
// shard (one relaxed atomic add — safe under the harness thread pool with
// no cross-thread contention); `snapshot()` aggregates every live shard
// plus the totals retired by exited worker threads.
//
// Only *deterministic* quantities may be recorded here (decision counts,
// stall cycles, cache hits) — never wall-clock durations. Experiment
// manifests embed snapshot deltas and must stay byte-identical across
// `--jobs` values; wall time belongs in the trace layer (obs/trace.hpp).
//
// Instrument call sites through the BM_OBS_* macros in obs/obs.hpp so a
// `BM_OBS=OFF` build compiles the instrumentation out entirely.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/latency.hpp"

namespace bm::obs {

/// Fixed capacity per metric kind; registration beyond it throws. Shards
/// are flat arrays sized by these, so handles stay valid forever and an
/// increment is a single indexed atomic add.
inline constexpr std::size_t kMaxCounters = 192;
inline constexpr std::size_t kMaxGauges = 64;
inline constexpr std::size_t kMaxHistograms = 64;

/// Monotonic event count. Handles are value types (an index); obtain once
/// (static local at the call site) and `add()` forever after.
class Counter {
 public:
  void add(std::uint64_t n = 1) const;

 private:
  friend Counter counter(std::string_view);
  explicit Counter(std::uint32_t id) : id_(id) {}
  std::uint32_t id_;
};

/// Last-write-wins instantaneous value (global, not sharded — gauges are
/// set from sequential driver code, e.g. a configured processor count).
class Gauge {
 public:
  void set(std::int64_t v) const;

 private:
  friend Gauge gauge(std::string_view);
  explicit Gauge(std::uint32_t id) : id_(id) {}
  std::uint32_t id_;
};

/// Distribution of a deterministic integer quantity (e.g. per-barrier stall
/// cycles). Sharded like counters; the snapshot exports the monotonic
/// `.count` / `.sum` pair so deltas stay meaningful, and the full
/// log-bucketed distribution is available via histogram_buckets() for
/// quantile reporting (never embedded in manifests).
class Histogram {
 public:
  void observe(std::uint64_t v) const;
  /// Folds `count` observations totalling `sum` in one shard access —
  /// exactly equivalent to `count` individual observe() calls (the export
  /// is the monotonic count/sum pair). Lets per-event hot paths tally
  /// locally and record once per run.
  void observe_n(std::uint64_t count, std::uint64_t sum) const;

 private:
  friend Histogram histogram(std::string_view);
  explicit Histogram(std::uint32_t id) : id_(id) {}
  std::uint32_t id_;
};

/// Finds or registers the named metric. Registration takes a lock; cache
/// the handle (the BM_OBS_* macros use a function-local static).
Counter counter(std::string_view name);
Gauge gauge(std::string_view name);
Histogram histogram(std::string_view name);

/// Point-in-time aggregate of every registered metric, keys sorted.
/// Histograms expand to `<name>.count` and `<name>.sum`.
struct Snapshot {
  struct Entry {
    std::string key;
    double value = 0;
    bool monotonic = true;  ///< counters/histogram totals; false for gauges
  };
  std::vector<Entry> entries;

  double get(std::string_view key, double def = 0) const;
};

/// Aggregates all shards. Call from a driver thread while no instrumented
/// worker is mid-flight (the harness joins its pool before returning).
Snapshot snapshot();

/// Merged log-bucketed distribution (live shards + retired totals) for the
/// named registry histogram, for p50/p90/p99/max extraction — e.g.
/// `sim.barrier_stall` quantiles. Zero-filled if the name was never
/// registered. observe_n() folds are credited to their mean-value bucket
/// (the count/sum pair stays exact), so bucket shapes may differ between
/// per-event and folded recording of the same data; manifests only ever
/// see count/sum, which are identical.
LatencyBuckets histogram_buckets(std::string_view name);

/// Per-run attribution: monotonic entries subtract (`after - before`),
/// gauges keep their `after` value. Entries that did not change (delta 0
/// and absent from `before`) are dropped so manifests list only metrics
/// the run actually touched.
Snapshot delta(const Snapshot& before, const Snapshot& after);

}  // namespace bm::obs
