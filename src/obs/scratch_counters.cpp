// Counter bumps for the support/scratch.hpp pooled arenas. They live here
// (not in bm_support) because bm_obs links *on top of* bm_support; the
// scratch header itself stays obs-free and header-only.
//
// `mem.*` metrics are machine/thread-dependent (each worker thread warms its
// own pool), so run_experiment excludes the prefix from experiment manifests
// — see src/exp/experiment.cpp.
#include "obs/obs.hpp"
#include "support/scratch.hpp"

namespace bm::scratch_detail {

void note_miss() { BM_OBS_COUNT("mem.scratch.miss"); }

void note_grow() { BM_OBS_COUNT("mem.scratch.grow"); }

}  // namespace bm::scratch_detail
