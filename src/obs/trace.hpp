// Event tracing in Chrome trace-event format (the JSON `traceEvents`
// array), viewable in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing. Two timelines share one file:
//
//   pid 1 "wall clock"       — RAII PhaseTimer spans from the real threads
//                              (codegen, opt, dag build, labeling, list
//                              scheduling, repair, simulation); tid = a
//                              small per-thread lane id.
//   pid 2 "simulated machine"— events stamped in *simulated* cycles: one
//                              lane per processor, carrying per-barrier
//                              stall spans and fire instants from the
//                              SBM/DBM simulators.
//
// Collection is off by default: every emit site first does one relaxed
// atomic load (`tracing_enabled()`), so an untraced run pays a branch.
// Events append to per-thread buffers under a per-buffer mutex that is
// only ever contended by `trace_write_json`, which must run (like
// `trace_start`) on a driver thread while no instrumented work is in
// flight — bmrun traces whole experiment invocations, whose worker pools
// are joined before the write.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace bm::obs {

inline constexpr std::uint32_t kWallPid = 1;  ///< real-time spans
inline constexpr std::uint32_t kSimPid = 2;   ///< simulated-cycle events

/// One trace-event record. The global trace buffers store these, and
/// callers with their own event streams (e.g. bmserve's per-request slow
/// traces) can build a vector and hand it to write_trace_events_json for a
/// standalone Perfetto file. `cat`/`arg_key` must be string literals.
struct TraceEvent {
  std::string name;
  const char* cat = "phase";
  char ph = 'X';   ///< 'X' (complete) or 'i' (instant)
  double ts = 0;   ///< us (wall) or cycles (sim)
  double dur = 0;  ///< 'X' only
  std::uint32_t pid = kWallPid;
  std::uint32_t tid = 0;
  const char* arg_key = nullptr;  ///< nullptr = no args object
  double arg_val = 0;
};

/// (pid, tid) -> display name for one trace lane.
struct TraceLaneName {
  std::uint32_t pid = kWallPid;
  std::uint32_t tid = 0;
  std::string name;
};

/// Serializes `events` as `{"traceEvents":[...],"displayTimeUnit":"ms"}`:
/// process_name metadata for each (pid, name) in `processes`, thread_name
/// metadata per lane in use (an entry in `lane_names` wins; otherwise
/// "thread N" on kWallPid, "PE N" elsewhere), then the events stably
/// sorted by (pid, tid, ts). Returns the number of data (non-metadata)
/// events written. This is the single writer behind both the global trace
/// sink (trace_write_json) and standalone traces (e.g. bmserve's
/// per-request slow traces).
std::size_t write_trace_events_json(
    std::ostream& os, std::vector<TraceEvent> events,
    const std::vector<std::pair<std::uint32_t, std::string>>& processes,
    const std::vector<TraceLaneName>& lane_names = {});

bool tracing_enabled();

/// Clears all buffers and starts collecting; timestamps are microseconds
/// relative to this call.
void trace_start();

/// Stops collecting (buffers keep their events until the next start).
void trace_stop();

/// Writes the collected events as `{"traceEvents": [...]}` plus process /
/// thread naming metadata; returns the number of data events written.
std::size_t trace_write_json(std::ostream& os);

/// RAII complete-event ('X') span on the calling thread's wall-clock lane.
/// `cat` must be a string literal (stored by pointer).
class PhaseTimer {
 public:
  explicit PhaseTimer(std::string name, const char* cat = "phase");
  PhaseTimer(std::string name, const char* cat, const char* arg_key,
             double arg_val);
  ~PhaseTimer();
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  std::string name_;
  const char* cat_;
  const char* arg_key_ = nullptr;
  double arg_val_ = 0;
  std::uint64_t start_us_ = 0;
  bool active_ = false;
};

/// Instant event ('i', thread scope) on the calling thread's lane.
void instant(std::string name, const char* cat, const char* arg_key = nullptr,
             double arg_val = 0);

/// Span on a simulated-machine processor lane, stamped in simulated cycles
/// (1 cycle rendered as 1 us). Used for per-barrier stall windows.
void sim_span(std::string name, const char* cat, std::uint32_t lane,
              double ts_cycles, double dur_cycles,
              const char* arg_key = nullptr, double arg_val = 0);

/// Instant event on a simulated-machine processor lane (e.g. barrier fire).
void sim_instant(std::string name, const char* cat, std::uint32_t lane,
                 double ts_cycles, const char* arg_key = nullptr,
                 double arg_val = 0);

/// Wall-clock spans aggregated by name (for `bmrun --profile`), sorted by
/// descending total time.
struct PhaseSummaryRow {
  std::string name;
  std::uint64_t count = 0;
  double total_us = 0;
  double max_us = 0;
};
std::vector<PhaseSummaryRow> phase_summary();

}  // namespace bm::obs
