#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <ostream>

namespace bm::obs {
namespace {

using Event = TraceEvent;

/// Per-thread event buffer. The owning thread appends; trace_start /
/// trace_write_json harvest under the same mutex. Buffers outlive their
/// thread by folding into the retired list on destruction.
struct EventBuffer {
  std::mutex mu;
  std::vector<Event> events;
  std::uint32_t lane;

  EventBuffer();
  ~EventBuffer();
};

struct TraceGlobal {
  std::atomic<bool> enabled{false};
  std::chrono::steady_clock::time_point base;
  std::mutex mu;  ///< guards buffers / retired / next_lane
  std::vector<EventBuffer*> buffers;
  std::vector<Event> retired;
  std::uint32_t next_lane = 0;
};

TraceGlobal& tg() {
  static TraceGlobal g;
  return g;
}

EventBuffer::EventBuffer() {
  TraceGlobal& g = tg();
  std::lock_guard<std::mutex> lock(g.mu);
  lane = g.next_lane++;
  g.buffers.push_back(this);
}

EventBuffer::~EventBuffer() {
  TraceGlobal& g = tg();
  std::lock_guard<std::mutex> lock(g.mu);
  {
    std::lock_guard<std::mutex> own(mu);
    g.retired.insert(g.retired.end(), std::make_move_iterator(events.begin()),
                     std::make_move_iterator(events.end()));
  }
  g.buffers.erase(std::find(g.buffers.begin(), g.buffers.end(), this));
}

EventBuffer& local_buffer() {
  thread_local EventBuffer buf;
  return buf;
}

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - tg().base)
          .count());
}

void push(Event e) {
  EventBuffer& buf = local_buffer();
  if (e.pid == kWallPid) e.tid = buf.lane;
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back(std::move(e));
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_event(std::ostream& os, const Event& e) {
  char num[64];
  os << "{\"name\":\"" << escape(e.name) << "\",\"cat\":\"" << e.cat
     << "\",\"ph\":\"" << e.ph << "\"";
  std::snprintf(num, sizeof num, "%.3f", e.ts);
  os << ",\"ts\":" << num;
  if (e.ph == 'X') {
    std::snprintf(num, sizeof num, "%.3f", e.dur);
    os << ",\"dur\":" << num;
  }
  if (e.ph == 'i') os << ",\"s\":\"t\"";
  os << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid;
  if (e.arg_key != nullptr) {
    std::snprintf(num, sizeof num, "%.17g", e.arg_val);
    os << ",\"args\":{\"" << e.arg_key << "\":" << num << "}";
  }
  os << "}";
}

void write_meta(std::ostream& os, const char* what, std::uint32_t pid,
                std::uint32_t tid, bool thread_level,
                const std::string& value) {
  os << "{\"name\":\"" << what << "\",\"ph\":\"M\",\"pid\":" << pid;
  if (thread_level) os << ",\"tid\":" << tid;
  os << ",\"args\":{\"name\":\"" << escape(value) << "\"}}";
}

/// Collects every buffered event (live buffers + retired) into one vector.
std::vector<Event> harvest() {
  TraceGlobal& g = tg();
  std::lock_guard<std::mutex> lock(g.mu);
  std::vector<Event> all = g.retired;
  for (EventBuffer* b : g.buffers) {
    std::lock_guard<std::mutex> own(b->mu);
    all.insert(all.end(), b->events.begin(), b->events.end());
  }
  return all;
}

}  // namespace

bool tracing_enabled() {
  // mo: on/off hint on the hot path; span recording takes the buffer lock,
  // which provides the real ordering — a stale read only costs one span.
  return tg().enabled.load(std::memory_order_relaxed);
}

void trace_start() {
  TraceGlobal& g = tg();
  {
    std::lock_guard<std::mutex> lock(g.mu);
    g.retired.clear();
    for (EventBuffer* b : g.buffers) {
      std::lock_guard<std::mutex> own(b->mu);
      b->events.clear();
    }
    g.base = std::chrono::steady_clock::now();
  }
  // mo: flag flip; the buffer resets above were published under g.mu, and
  // recorders re-take that lock before touching buffers.
  g.enabled.store(true, std::memory_order_relaxed);
}

// mo: flag flip, same contract as trace_start.
void trace_stop() { tg().enabled.store(false, std::memory_order_relaxed); }

PhaseTimer::PhaseTimer(std::string name, const char* cat)
    : name_(std::move(name)), cat_(cat) {
  if (!tracing_enabled()) return;
  active_ = true;
  start_us_ = now_us();
}

PhaseTimer::PhaseTimer(std::string name, const char* cat, const char* arg_key,
                       double arg_val)
    : PhaseTimer(std::move(name), cat) {
  arg_key_ = arg_key;
  arg_val_ = arg_val;
}

PhaseTimer::~PhaseTimer() {
  if (!active_) return;
  const std::uint64_t end = now_us();
  push({std::move(name_), cat_, 'X', static_cast<double>(start_us_),
        static_cast<double>(end - start_us_), kWallPid, 0, arg_key_,
        arg_val_});
}

void instant(std::string name, const char* cat, const char* arg_key,
             double arg_val) {
  if (!tracing_enabled()) return;
  push({std::move(name), cat, 'i', static_cast<double>(now_us()), 0, kWallPid,
        0, arg_key, arg_val});
}

void sim_span(std::string name, const char* cat, std::uint32_t lane,
              double ts_cycles, double dur_cycles, const char* arg_key,
              double arg_val) {
  if (!tracing_enabled()) return;
  push({std::move(name), cat, 'X', ts_cycles, dur_cycles, kSimPid, lane,
        arg_key, arg_val});
}

void sim_instant(std::string name, const char* cat, std::uint32_t lane,
                 double ts_cycles, const char* arg_key, double arg_val) {
  if (!tracing_enabled()) return;
  push({std::move(name), cat, 'i', ts_cycles, 0, kSimPid, lane, arg_key,
        arg_val});
}

std::size_t write_trace_events_json(
    std::ostream& os, std::vector<TraceEvent> events,
    const std::vector<std::pair<std::uint32_t, std::string>>& processes,
    const std::vector<TraceLaneName>& lane_names) {
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.pid != b.pid) return a.pid < b.pid;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.ts < b.ts;
                   });

  // Lanes actually used, for thread-name metadata.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> lanes;  // (pid, tid)
  for (const Event& e : events) {
    const auto key = std::make_pair(e.pid, e.tid);
    if (std::find(lanes.begin(), lanes.end(), key) == lanes.end())
      lanes.push_back(key);
  }
  auto lane_name = [&](std::uint32_t pid, std::uint32_t tid) -> std::string {
    for (const TraceLaneName& n : lane_names)
      if (n.pid == pid && n.tid == tid) return n.name;
    return pid == kWallPid ? "thread " + std::to_string(tid)
                           : "PE " + std::to_string(tid);
  };

  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (const auto& [pid, name] : processes) {
    sep();
    write_meta(os, "process_name", pid, 0, false, name);
  }
  for (const auto& [pid, tid] : lanes) {
    sep();
    write_meta(os, "thread_name", pid, tid, true, lane_name(pid, tid));
  }
  for (const Event& e : events) {
    sep();
    write_event(os, e);
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
  return events.size();
}

std::size_t trace_write_json(std::ostream& os) {
  return write_trace_events_json(os, harvest(),
                                 {{kWallPid, "wall clock"},
                                  {kSimPid, "simulated machine"}});
}

std::vector<PhaseSummaryRow> phase_summary() {
  std::vector<PhaseSummaryRow> rows;
  for (const Event& e : harvest()) {
    if (e.ph != 'X' || e.pid != kWallPid) continue;
    auto it = std::find_if(rows.begin(), rows.end(), [&](const auto& r) {
      return r.name == e.name;
    });
    if (it == rows.end()) {
      rows.push_back({e.name, 0, 0, 0});
      it = rows.end() - 1;
    }
    ++it->count;
    it->total_us += e.dur;
    it->max_us = std::max(it->max_us, e.dur);
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.total_us > b.total_us;
  });
  return rows;
}

}  // namespace bm::obs
