// Instrumentation entry points. All library call sites go through these
// macros so a `cmake -DBM_OBS=OFF` build compiles the observability layer
// out entirely (the macros expand to nothing); the default `BM_OBS=ON`
// build costs one relaxed atomic load per disabled trace site and one
// thread-local atomic add per counter bump.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#ifndef BM_OBS_ENABLED
#define BM_OBS_ENABLED 1
#endif

#if BM_OBS_ENABLED

/// Bumps the named counter by `n`. The handle is registered once per call
/// site (function-local static), so steady state is a single sharded add.
#define BM_OBS_COUNT_N(name, n)                              \
  do {                                                       \
    static const ::bm::obs::Counter bm_obs_counter_ =        \
        ::bm::obs::counter(name);                            \
    bm_obs_counter_.add(static_cast<std::uint64_t>(n));      \
  } while (0)

#define BM_OBS_COUNT(name) BM_OBS_COUNT_N(name, 1)

/// Records one observation into the named histogram.
#define BM_OBS_OBSERVE(name, v)                              \
  do {                                                       \
    static const ::bm::obs::Histogram bm_obs_hist_ =         \
        ::bm::obs::histogram(name);                          \
    bm_obs_hist_.observe(static_cast<std::uint64_t>(v));     \
  } while (0)

/// Records `cnt` observations totalling `sum` into the named histogram —
/// one shard access, equivalent to `cnt` BM_OBS_OBSERVE calls.
#define BM_OBS_OBSERVE_N(name, cnt, sum)                     \
  do {                                                       \
    static const ::bm::obs::Histogram bm_obs_hist_ =         \
        ::bm::obs::histogram(name);                          \
    bm_obs_hist_.observe_n(static_cast<std::uint64_t>(cnt),  \
                           static_cast<std::uint64_t>(sum)); \
  } while (0)

/// Sets the named gauge to `v`.
#define BM_OBS_GAUGE_SET(name, v)                            \
  do {                                                       \
    static const ::bm::obs::Gauge bm_obs_gauge_ =            \
        ::bm::obs::gauge(name);                              \
    bm_obs_gauge_.set(static_cast<std::int64_t>(v));         \
  } while (0)

/// RAII wall-clock span named `name` (category `cat`), lasting until the
/// end of the enclosing scope. `var` names the local timer object.
#define BM_OBS_SPAN(var, name, cat) ::bm::obs::PhaseTimer var(name, cat)
#define BM_OBS_SPAN_ARG(var, name, cat, key, val) \
  ::bm::obs::PhaseTimer var(name, cat, key, val)

/// For guarding hand-written event emission (e.g. simulator lane events):
/// constant-false under BM_OBS=OFF so the whole block is dead code.
#define BM_OBS_TRACING() (::bm::obs::tracing_enabled())

#else  // BM_OBS_ENABLED

#define BM_OBS_COUNT_N(name, n) \
  do {                          \
  } while (0)
#define BM_OBS_COUNT(name) \
  do {                     \
  } while (0)
#define BM_OBS_OBSERVE(name, v) \
  do {                          \
  } while (0)
#define BM_OBS_OBSERVE_N(name, cnt, sum) \
  do {                                   \
  } while (0)
#define BM_OBS_GAUGE_SET(name, v) \
  do {                            \
  } while (0)
#define BM_OBS_SPAN(var, name, cat) \
  do {                              \
  } while (0)
#define BM_OBS_SPAN_ARG(var, name, cat, key, val) \
  do {                                            \
  } while (0)
#define BM_OBS_TRACING() (false)

#endif  // BM_OBS_ENABLED
