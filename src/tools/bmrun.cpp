// bmrun — the single driver for every paper-reproduction experiment.
//
//   bmrun list [--names]        table (or bare names) of all experiments
//   bmrun describe <exp>...     descriptor: flags, sweeps, expected shape
//   bmrun run <exp>... [--all]  run experiments; artifacts land in --out-dir
//
// Flags after `run` are schema-validated against each selected experiment:
// a misspelled flag is an error, never a silently ignored default.
#include <fstream>
#include <iostream>

#include "exp/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"
#include "support/table.hpp"

namespace bm {
namespace {

int usage(std::ostream& os, int code) {
  os << "usage: bmrun <command> [args]\n"
        "\n"
        "commands:\n"
        "  list [--names]          list all registered experiments\n"
        "  describe <exp>...       show an experiment's descriptor\n"
        "  run <exp>... [--all]    run experiments (every flag is validated\n"
        "                          against the experiment's declared schema)\n"
        "\n"
        "common run flags: --seeds N --base-seed N --jobs N|auto "
        "--out-dir DIR\n"
        "observability:    --trace FILE (Chrome trace-event JSON, open in\n"
        "                  Perfetto)  --profile (phase/counter summary on\n"
        "                  stdout after the run)\n"
        "verification:     --verify (static race detector + lints on every\n"
        "                  schedule; errors abort with exit 1; see bmverify\n"
        "                  for the standalone tool)\n"
        "Artifacts: <out-dir>/<stem>.csv series + <out-dir>/<exp>.json "
        "result per experiment (default out/).\n";
  return code;
}

int unknown_experiment(const std::string& name) {
  std::cerr << "bmrun: unknown experiment '" << name << "'";
  const std::string hint = ExperimentRegistry::instance().closest_name(name);
  if (!hint.empty()) std::cerr << " — did you mean '" << hint << "'?";
  std::cerr << " (see `bmrun list`)\n";
  return 2;
}

int cmd_list(const CliFlags& flags) {
  const ExperimentRegistry& reg = ExperimentRegistry::instance();
  flags.validate({}, {bool_flag("names", false, "print bare names only")});
  if (flags.get_bool("names", false)) {
    for (const Experiment* e : reg.all()) std::cout << e->name << '\n';
    return 0;
  }
  TextTable table({"experiment", "reproduces", "title"});
  for (const Experiment* e : reg.all())
    table.add_row({e->name, e->paper_ref, e->title});
  table.render(std::cout);
  std::cout << '\n'
            << reg.all().size()
            << " experiments; `bmrun describe <exp>` for flags and sweeps, "
               "`bmrun run --all` to run everything.\n";
  return 0;
}

void describe(const Experiment& e) {
  std::cout << e.name << " — " << e.title << '\n'
            << "  reproduces: " << e.paper_ref << '\n'
            << "  workload:   " << e.workload << '\n';
  if (!e.expected.empty()) std::cout << "  expected:   " << e.expected << '\n';
  std::cout << "  flags:\n";
  for (const FlagSpec& f : e.flags)
    std::cout << "    --" << f.name << " <" << to_string(f.type)
              << "> (default " << (f.def.empty() ? "\"\"" : f.def) << ")  "
              << f.help << '\n';
  for (const Sweep& s : e.sweeps) {
    std::cout << "  sweep " << s.axis << ":";
    for (std::size_t i = 0; i < s.values.size(); ++i)
      std::cout << ' ' << s.label(i);
    std::cout << '\n';
  }
  std::cout << "  artifacts:  "
            << (e.csv_stem.empty() ? e.name : e.csv_stem) << ".csv, "
            << e.name << ".json\n";
}

int cmd_describe(const CliFlags& flags) {
  const ExperimentRegistry& reg = ExperimentRegistry::instance();
  const auto& names = flags.positional();
  if (names.empty()) {
    std::cerr << "bmrun describe: name at least one experiment "
                 "(see `bmrun list`)\n";
    return 2;
  }
  bool first = true;
  for (const std::string& name : names) {
    const Experiment* e = reg.find(name);
    if (e == nullptr) return unknown_experiment(name);
    if (!first) std::cout << '\n';
    first = false;
    describe(*e);
  }
  return 0;
}

int cmd_run(const CliFlags& flags) {
  const ExperimentRegistry& reg = ExperimentRegistry::instance();
  std::vector<const Experiment*> selected;
  if (flags.get_bool("all", false)) {
    BM_REQUIRE(flags.positional().empty(),
               "bmrun run: give experiment names or --all, not both");
    selected = reg.all();
  } else {
    for (const std::string& name : flags.positional()) {
      const Experiment* e = reg.find(name);
      if (e == nullptr) return unknown_experiment(name);
      selected.push_back(e);
    }
  }
  if (selected.empty()) {
    std::cerr << "bmrun run: name at least one experiment or pass --all\n";
    return 2;
  }
  const std::vector<FlagSpec> driver_flags = {
      bool_flag("all", false, "run every registered experiment"),
      string_flag("trace", "",
                  "write a Chrome trace-event JSON covering the whole run"),
      bool_flag("profile", false,
                "print a phase-timing + counter summary after the run"),
      bool_flag("verify", false,
                "run the static schedule verifier on every schedule; any "
                "race or lint error aborts the run with exit 1")};
  // Validate against every selected experiment before running any, so a
  // flag that one experiment does not declare aborts the whole invocation
  // instead of half-completing.
  for (const Experiment* e : selected) {
    try {
      flags.validate(e->flags, driver_flags);
    } catch (const Error& err) {
      std::cerr << "bmrun run " << e->name << ": " << err.what() << '\n';
      return 2;
    }
  }
  const std::string trace_path = flags.get("trace", "");
  const bool profile = flags.get_bool("profile", false);
#if !BM_OBS_ENABLED
  if (!trace_path.empty() || profile)
    std::cerr << "bmrun: warning: built with BM_OBS=OFF — --trace/--profile "
                 "output will be empty\n";
#endif
  // --profile needs span collection too: PhaseTimer only records while
  // tracing is enabled.
  if (!trace_path.empty() || profile) obs::trace_start();
  const obs::Snapshot before = profile ? obs::snapshot() : obs::Snapshot{};

  for (std::size_t i = 0; i < selected.size(); ++i) {
    const Experiment& e = *selected[i];
    const std::string out_dir = flags.get("out-dir", "out");
    if (i) std::cout << '\n';
    run_experiment(e, flags, out_dir, std::cout);
  }

  if (!trace_path.empty()) {
    std::ofstream out(trace_path, std::ios::binary);
    BM_REQUIRE(out.good(), "cannot open trace file " + trace_path);
    const std::size_t events = obs::trace_write_json(out);
    BM_REQUIRE(out.good(), "failed writing trace file " + trace_path);
    std::cout << "(trace: " << events << " events written to " << trace_path
              << "; open in https://ui.perfetto.dev)\n";
  }
  if (!trace_path.empty() || profile) obs::trace_stop();
  if (profile) {
    std::cout << "\n-- profile: phases --\n";
    TextTable phases({"phase", "count", "total ms", "max ms"});
    for (const obs::PhaseSummaryRow& r : obs::phase_summary())
      phases.add_row({r.name, std::to_string(r.count),
                      TextTable::num(r.total_us / 1000.0, 2),
                      TextTable::num(r.max_us / 1000.0, 2)});
    phases.render(std::cout);
    std::cout << "\n-- profile: counters --\n";
    TextTable counters({"counter", "value"});
    const obs::Snapshot used = obs::delta(before, obs::snapshot());
    for (const obs::Snapshot::Entry& e : used.entries)
      counters.add_row({e.key, TextTable::num(e.value, 0)});
    counters.render(std::cout);
  }
  return 0;
}

}  // namespace
}  // namespace bm

int main(int argc, char** argv) {
  using namespace bm;
  if (argc < 2) return usage(std::cerr, 2);
  const std::string cmd = argv[1];
  try {
    const CliFlags flags(argc - 1, argv + 1);
    if (cmd == "list") return cmd_list(flags);
    if (cmd == "describe") return cmd_describe(flags);
    if (cmd == "run") return cmd_run(flags);
    if (cmd == "help" || cmd == "--help" || cmd == "-h")
      return usage(std::cout, 0);
    std::cerr << "bmrun: unknown command '" << cmd << "'\n";
    return usage(std::cerr, 2);
  } catch (const std::exception& e) {
    std::cerr << "bmrun: " << e.what() << '\n';
    return 1;
  }
}
