// bmserve — long-lived scheduling daemon. Accepts length-prefixed protocol
// frames (docs/SERVING.md) over a Unix-domain socket and/or loopback TCP,
// schedules programs through session-scoped pipeline instances, caches
// schedules under canonical DAG fingerprints, and sheds overload with fast
// rejections. SIGTERM/SIGINT drain gracefully: every admitted request is
// answered before exit (exit code 0). SIGUSR1 dumps the `stats v1` JSON
// snapshot to stderr without disturbing service (docs/OBSERVABILITY.md).
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "serve/net.hpp"
#include "support/cli.hpp"

namespace {

bm::serve::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

void on_dump_signal(int) {
  if (g_server != nullptr) g_server->request_dump();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bm;

  const std::vector<FlagSpec> schema = {
      string_flag("socket", "", "unix-domain socket path to listen on"),
      int_flag("port", -1, "loopback TCP port (-1 = off, 0 = ephemeral)"),
      int_flag("workers", 4, "scheduling worker threads"),
      int_flag("max-queue", 128,
               "admitted-request bound; overload is rejected"),
      int_flag("cache-entries", 4096, "schedule cache entry bound (0 = off)"),
      int_flag("cache-mb", 64, "schedule cache byte bound (MiB)"),
      string_flag("access-log", "",
                  "JSONL access log path (one line per request)"),
      int_flag("access-log-rotate-mb", 64,
               "rotate the access log past this size (MiB)"),
      int_flag("slow-trace-us", 0,
               "emit a Perfetto trace for requests slower than this (0 = off)"),
      string_flag("trace-dir", "",
                  "directory for slow-request traces (with --slow-trace-us)"),
      int_flag("slow-trace-max", 256, "stop emitting after this many traces"),
      bool_flag("quiet", false, "skip the shutdown stats report"),
  };

  try {
    const CliFlags flags(argc, argv);
    flags.validate(schema);

    const std::string socket_path = flags.get("socket", "");
    const std::int64_t port = flags.get_int("port", -1);
    if (socket_path.empty() && port < 0) {
      std::fprintf(stderr,
                   "bmserve: need --socket PATH and/or --port N "
                   "(see docs/SERVING.md)\n");
      return 2;
    }

    serve::NetConfig cfg;
    cfg.uds_path = socket_path;
    cfg.tcp_port = static_cast<int>(port);
    cfg.core.workers =
        static_cast<std::size_t>(std::max<std::int64_t>(1, flags.get_int("workers", 4)));
    cfg.core.max_queue = static_cast<std::size_t>(
        std::max<std::int64_t>(1, flags.get_int("max-queue", 128)));
    cfg.core.cache_entries = static_cast<std::size_t>(
        std::max<std::int64_t>(0, flags.get_int("cache-entries", 4096)));
    cfg.core.cache_bytes = static_cast<std::size_t>(std::max<std::int64_t>(
                               0, flags.get_int("cache-mb", 64)))
                           << 20;
    cfg.core.telemetry.access_log_path = flags.get("access-log", "");
    cfg.core.telemetry.access_log_rotate_bytes =
        static_cast<std::size_t>(std::max<std::int64_t>(
            1, flags.get_int("access-log-rotate-mb", 64)))
        << 20;
    cfg.core.telemetry.slow_trace_us = static_cast<std::uint64_t>(
        std::max<std::int64_t>(0, flags.get_int("slow-trace-us", 0)));
    cfg.core.telemetry.slow_trace_dir = flags.get("trace-dir", "");
    cfg.core.telemetry.slow_trace_max = static_cast<std::size_t>(
        std::max<std::int64_t>(0, flags.get_int("slow-trace-max", 256)));
    if (cfg.core.telemetry.slow_trace_us > 0 &&
        cfg.core.telemetry.slow_trace_dir.empty()) {
      std::fprintf(stderr, "bmserve: --slow-trace-us needs --trace-dir DIR\n");
      return 2;
    }

    serve::Server server(std::move(cfg));
    g_server = &server;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    std::signal(SIGUSR1, on_dump_signal);

    if (!socket_path.empty())
      std::printf("bmserve: listening on %s\n", socket_path.c_str());
    if (port >= 0)
      std::printf("bmserve: listening on 127.0.0.1:%d\n", server.tcp_port());
    std::fflush(stdout);

    server.run();  // returns after the graceful drain
    g_server = nullptr;

    if (!flags.get_bool("quiet", false)) {
      const serve::CoreStats stats = server.core().stats();
      std::printf("bmserve: drained\n%s", stats.to_text().c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bmserve: %s\n", e.what());
    return 1;
  }
}
