// trace_check — validates a Chrome trace-event JSON file produced by
// `bmrun run ... --trace FILE`.
//
//   trace_check FILE
//
// Exit 0 when FILE parses as JSON, has a top-level object with a
// `traceEvents` array, and that array contains at least one data event
// carrying "name", "ph", and "ts". Exit 1 (with a diagnostic on stderr)
// otherwise. Deliberately dependency-free: a ~100-line recursive-descent
// parser is all the structure we need to assert.
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

/// Minimal JSON value: only the shapes trace_check inspects are retained
/// (objects and arrays); scalars record their kind for presence checks.
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Value(Kind k = Kind::kNull) : kind(k) {}  // NOLINT: implicit by design
  Kind kind;
  std::string str;                        // kString / kNumber (verbatim)
  std::vector<Value> items;               // kArray
  std::map<std::string, Value> members;   // kObject

  bool has(const std::string& key) const {
    return kind == Kind::kObject && members.contains(key);
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    std::ostringstream os;
    os << why << " at byte " << pos_;
    throw std::runtime_error(os.str());
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': literal("true"); return {Value::Kind::kBool};
      case 'f': literal("false"); return {Value::Kind::kBool};
      case 'n': literal("null"); return {Value::Kind::kNull};
      default: return number();
    }
  }

  void literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0)
      fail("invalid literal");
    pos_ += word.size();
  }

  Value object() {
    expect('{');
    Value v{Value::Kind::kObject};
    skip_ws();
    if (peek() == '}') { ++pos_; return v; }
    while (true) {
      skip_ws();
      Value key = string_value();
      skip_ws();
      expect(':');
      v.members[key.str] = value();
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return v;
    }
  }

  Value array() {
    expect('[');
    Value v{Value::Kind::kArray};
    skip_ws();
    if (peek() == ']') { ++pos_; return v; }
    while (true) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return v;
    }
  }

  Value string_value() {
    expect('"');
    Value v{Value::Kind::kString};
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        char esc = text_[pos_++];
        switch (esc) {
          case '"': v.str += '"'; break;
          case '\\': v.str += '\\'; break;
          case '/': v.str += '/'; break;
          case 'b': v.str += '\b'; break;
          case 'f': v.str += '\f'; break;
          case 'n': v.str += '\n'; break;
          case 'r': v.str += '\r'; break;
          case 't': v.str += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            for (int i = 0; i < 4; ++i)
              if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i])))
                fail("invalid \\u escape");
            // Non-ASCII escapes are legal but never need exact decoding
            // here; substitute '?' so the validator stays tiny.
            v.str += '?';
            pos_ += 4;
            break;
          }
          default: fail("invalid escape character");
        }
      } else {
        v.str += c;
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("invalid number");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') { ++pos_; digits(); }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      digits();
    }
    Value v{Value::Kind::kNumber};
    v.str = text_.substr(start, pos_ - start);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

int check(const Value& root) {
  if (root.kind != Value::Kind::kObject) {
    std::cerr << "trace_check: top level is not a JSON object\n";
    return 1;
  }
  if (!root.has("traceEvents")) {
    std::cerr << "trace_check: no \"traceEvents\" member\n";
    return 1;
  }
  const Value& events = root.members.at("traceEvents");
  if (events.kind != Value::Kind::kArray) {
    std::cerr << "trace_check: \"traceEvents\" is not an array\n";
    return 1;
  }
  std::size_t data_events = 0;
  for (std::size_t i = 0; i < events.items.size(); ++i) {
    const Value& e = events.items[i];
    if (e.kind != Value::Kind::kObject) {
      std::cerr << "trace_check: traceEvents[" << i << "] is not an object\n";
      return 1;
    }
    if (!e.has("name") || !e.has("ph") || !e.has("pid")) {
      std::cerr << "trace_check: traceEvents[" << i
                << "] lacks name/ph/pid\n";
      return 1;
    }
    const Value& ph = e.members.at("ph");
    if (ph.kind != Value::Kind::kString || ph.str.size() != 1) {
      std::cerr << "trace_check: traceEvents[" << i
                << "] has a malformed \"ph\"\n";
      return 1;
    }
    if (ph.str == "M") continue;  // metadata events carry no timestamp
    if (!e.has("ts")) {
      std::cerr << "trace_check: traceEvents[" << i << "] (ph=" << ph.str
                << ") lacks \"ts\"\n";
      return 1;
    }
    if (ph.str == "X" && !e.has("dur")) {
      std::cerr << "trace_check: traceEvents[" << i
                << "] is a complete event without \"dur\"\n";
      return 1;
    }
    ++data_events;
  }
  if (data_events == 0) {
    std::cerr << "trace_check: no data events (only metadata or empty)\n";
    return 1;
  }
  std::cout << "trace_check: OK (" << data_events << " data events, "
            << events.items.size() - data_events << " metadata)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: trace_check <trace.json>\n";
    return 2;
  }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in.good()) {
    std::cerr << "trace_check: cannot open " << argv[1] << '\n';
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  try {
    Parser parser(text);
    return check(parser.parse());
  } catch (const std::exception& e) {
    std::cerr << "trace_check: " << argv[1] << ": " << e.what() << '\n';
    return 1;
  }
}
