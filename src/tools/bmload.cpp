// bmload — load generator and correctness client for bmserve.
//
// Opens N connections, drives `--requests` synth requests across them
// (round-robin seed indices in [0, --distinct) so the server's schedule
// cache sees a controllable hit ratio), checks every response, and reports
// latency percentiles and aggregate QPS. Nonzero exit on any protocol
// error, unexpected rejection, or response/request id mismatch — the CI
// serve-smoke job relies on that.
//
//   bmload --socket /tmp/bm.sock --requests 2000 --connections 4
//   bmload --port 7421 --requests 500 --distinct 16 --verify
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "serve/protocol.hpp"
#include "support/cli.hpp"

namespace {

using namespace bm;
using namespace bm::serve;

int connect_uds(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

struct WorkerReport {
  std::vector<double> latencies_us;
  std::size_t ok = 0, hits = 0, rejected = 0, errors = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::vector<FlagSpec> schema = {
      string_flag("socket", "", "connect to this unix-domain socket"),
      int_flag("port", -1, "connect to this loopback TCP port"),
      int_flag("requests", 1000, "total requests across all connections"),
      int_flag("connections", 4, "concurrent connections"),
      int_flag("distinct", 32,
               "distinct (base-seed, index) pairs; smaller = hotter cache"),
      int_flag("statements", 20, "generator: statements per benchmark"),
      int_flag("variables", 8, "generator: variable pool size"),
      int_flag("procs", 8, "scheduler: processor count"),
      bool_flag("verify", false, "request server-side verification"),
      bool_flag("no-cache", false, "bypass the schedule cache"),
      bool_flag("allow-reject", false,
                "tolerate rejected responses (overload experiments)"),
  };

  try {
    const CliFlags flags(argc, argv);
    flags.validate(schema);
    const std::string socket_path = flags.get("socket", "");
    const std::int64_t port = flags.get_int("port", -1);
    if (socket_path.empty() && port < 0) {
      std::fprintf(stderr, "bmload: need --socket PATH or --port N\n");
      return 2;
    }
    const std::size_t total =
        static_cast<std::size_t>(std::max<std::int64_t>(1, flags.get_int("requests", 1000)));
    const std::size_t conns = static_cast<std::size_t>(
        std::max<std::int64_t>(1, flags.get_int("connections", 4)));
    const std::size_t distinct = static_cast<std::size_t>(
        std::max<std::int64_t>(1, flags.get_int("distinct", 32)));
    const bool allow_reject = flags.get_bool("allow-reject", false);

    Request proto;
    proto.verb = Verb::kSynth;
    proto.gen.num_statements =
        static_cast<std::uint32_t>(flags.get_int("statements", 20));
    proto.gen.num_variables =
        static_cast<std::uint32_t>(flags.get_int("variables", 8));
    proto.sched.num_procs =
        static_cast<std::size_t>(flags.get_int("procs", 8));
    proto.verify = flags.get_bool("verify", false);
    proto.no_cache = flags.get_bool("no-cache", false);

    std::atomic<std::size_t> next_request{0};
    std::atomic<bool> failed{false};
    std::vector<WorkerReport> reports(conns);
    std::vector<std::thread> threads;
    const auto wall_start = std::chrono::steady_clock::now();

    for (std::size_t c = 0; c < conns; ++c) {
      threads.emplace_back([&, c] {
        WorkerReport& rep = reports[c];
        const int fd = socket_path.empty()
                           ? connect_tcp(static_cast<int>(port))
                           : connect_uds(socket_path);
        if (fd < 0) {
          std::fprintf(stderr, "bmload: connection %zu failed to connect\n",
                       c);
          failed.store(true);
          return;
        }
        for (;;) {
          const std::size_t i = next_request.fetch_add(1);
          if (i >= total || failed.load()) break;
          Request req = proto;
          req.id = i + 1;
          req.index = i % distinct;

          const auto t0 = std::chrono::steady_clock::now();
          std::optional<std::string> payload;
          try {
            if (!write_frame(fd, encode_request(req))) {
              std::fprintf(stderr, "bmload: write failed (req %zu)\n", i);
              failed.store(true);
              break;
            }
            payload = read_frame(fd);
          } catch (const std::exception& e) {
            std::fprintf(stderr, "bmload: %s (req %zu)\n", e.what(), i);
            failed.store(true);
            break;
          }
          if (!payload) {
            std::fprintf(stderr, "bmload: server closed connection\n");
            failed.store(true);
            break;
          }
          const auto t1 = std::chrono::steady_clock::now();

          Response resp;
          try {
            resp = decode_response(*payload);
          } catch (const std::exception& e) {
            std::fprintf(stderr, "bmload: bad response: %s\n", e.what());
            failed.store(true);
            break;
          }
          if (resp.id != req.id) {
            std::fprintf(stderr, "bmload: id mismatch (%llu != %llu)\n",
                         static_cast<unsigned long long>(resp.id),
                         static_cast<unsigned long long>(req.id));
            failed.store(true);
            break;
          }
          switch (resp.status) {
            case Status::kOk:
              if (resp.body.empty() || resp.fingerprint.empty() ||
                  (proto.verify && resp.verify_errors != 0)) {
                std::fprintf(stderr, "bmload: bad ok response (req %zu)\n",
                             i);
                failed.store(true);
                break;
              }
              ++rep.ok;
              if (resp.cache == CacheOutcome::kHit) ++rep.hits;
              break;
            case Status::kRejected:
              ++rep.rejected;
              if (!allow_reject) {
                std::fprintf(stderr, "bmload: rejected: %s\n",
                             resp.error.c_str());
                failed.store(true);
              }
              break;
            default:
              ++rep.errors;
              std::fprintf(stderr, "bmload: server error: %s\n",
                           resp.error.c_str());
              failed.store(true);
              break;
          }
          rep.latencies_us.push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
        }
        ::close(fd);
      });
    }
    for (std::thread& t : threads) t.join();
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    WorkerReport all;
    for (const WorkerReport& r : reports) {
      all.ok += r.ok;
      all.hits += r.hits;
      all.rejected += r.rejected;
      all.errors += r.errors;
      all.latencies_us.insert(all.latencies_us.end(), r.latencies_us.begin(),
                              r.latencies_us.end());
    }
    std::sort(all.latencies_us.begin(), all.latencies_us.end());
    auto pct = [&](double p) -> double {
      if (all.latencies_us.empty()) return 0;
      const auto idx = static_cast<std::size_t>(
          p * static_cast<double>(all.latencies_us.size() - 1));
      return all.latencies_us[idx];
    };

    std::printf(
        "bmload: %zu ok (%zu cache hits), %zu rejected, %zu errors\n",
        all.ok, all.hits, all.rejected, all.errors);
    std::printf("bmload: p50 %.1f us  p99 %.1f us  qps %.0f\n", pct(0.50),
                pct(0.99),
                wall_s > 0 ? static_cast<double>(all.latencies_us.size()) /
                                 wall_s
                           : 0.0);
    return failed.load() ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bmload: %s\n", e.what());
    return 2;
  }
}
