// bmload — load generator, correctness client, and live dashboard for
// bmserve.
//
// Load mode (default): opens N connections, drives `--requests` synth
// requests across them (round-robin seed indices in [0, --distinct) so the
// server's schedule cache sees a controllable hit ratio), checks every
// response, and reports latency quantiles and aggregate QPS. Latencies go
// through the same log-bucketed histogram the server uses
// (obs/latency.hpp) — quantiles are bucket upper bounds, within 25% of
// exact. Nonzero exit on any protocol error, unexpected rejection, or
// response/request id mismatch — the CI serve-smoke job relies on that.
//
// Stats mode (--stats): polls the `stats v1` verb every --interval-ms and
// prints a one-line dashboard per poll (QPS over the poll gap, trailing-
// window p50/p99, cache hit ratio, queue depth). Run it next to a load:
//
//   bmload --socket /tmp/bm.sock --requests 2000 --connections 4
//   bmload --port 7421 --requests 500 --distinct 16 --verify
//   bmload --socket /tmp/bm.sock --stats --interval-ms 500 --iterations 10
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "obs/latency.hpp"
#include "serve/protocol.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"

namespace {

using namespace bm;
using namespace bm::serve;

int connect_uds(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int do_connect(const std::string& socket_path, std::int64_t port) {
  return socket_path.empty() ? connect_tcp(static_cast<int>(port))
                             : connect_uds(socket_path);
}

struct WorkerReport {
  obs::LatencyBuckets hist;
  std::size_t ok = 0, hits = 0, rejected = 0, errors = 0;
};

/// `--stats`: poll the stats verb and print a dashboard line per poll.
/// Returns the process exit code.
int run_stats_dashboard(const std::string& socket_path, std::int64_t port,
                        std::int64_t interval_ms, std::int64_t iterations) {
  const int fd = do_connect(socket_path, port);
  if (fd < 0) {
    std::fprintf(stderr, "bmload: failed to connect\n");
    return 1;
  }
  double prev_answered = -1, prev_uptime_us = 0;
  for (std::int64_t it = 0; iterations <= 0 || it < iterations; ++it) {
    if (it > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    Request req;
    req.id = static_cast<std::uint64_t>(it) + 1;
    req.verb = Verb::kStats;

    std::optional<std::string> payload;
    try {
      if (write_frame(fd, encode_request(req))) payload = read_frame(fd);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bmload: %s\n", e.what());
      ::close(fd);
      return 1;
    }
    if (!payload) {
      std::fprintf(stderr, "bmload: server closed connection\n");
      ::close(fd);
      return 1;
    }

    json::Value snap;
    try {
      const Response resp = decode_response(*payload);
      if (resp.status != Status::kOk) throw Error("stats status not ok");
      snap = json::parse(resp.body);
      if (snap.str("", "stats") != "v1") throw Error("not a stats v1 body");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bmload: bad stats response: %s\n", e.what());
      ::close(fd);
      return 1;
    }

    const double uptime_us = snap.num(0, "uptime_us");
    const double answered =
        snap.num(0, "totals", "ok") + snap.num(0, "totals", "rejected") +
        snap.num(0, "totals", "cancelled") + snap.num(0, "totals", "errors");
    // QPS over the poll gap; the first line has no gap, so rate since boot.
    const double d_req =
        prev_answered < 0 ? answered : answered - prev_answered;
    const double d_us =
        prev_answered < 0 ? uptime_us : uptime_us - prev_uptime_us;
    const double qps = d_us > 0 ? d_req * 1e6 / d_us : 0.0;
    prev_answered = answered;
    prev_uptime_us = uptime_us;

    std::printf(
        "bmload: up %.1fs  qps %.0f  p50 %.0fus  p99 %.0fus  "
        "win-p99 %.0fus  hit %.2f  queue %.0f  inflight %.0f\n",
        uptime_us / 1e6, qps, snap.num(0, "latency", "p50_us"),
        snap.num(0, "latency", "p99_us"),
        snap.num(0, "window", "quantiles", "p99_us"),
        snap.num(0, "cache", "hit_ratio"), snap.num(0, "queue_depth"),
        snap.num(0, "inflight"));
    std::fflush(stdout);
  }
  ::close(fd);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<FlagSpec> schema = {
      string_flag("socket", "", "connect to this unix-domain socket"),
      int_flag("port", -1, "connect to this loopback TCP port"),
      int_flag("requests", 1000, "total requests across all connections"),
      int_flag("connections", 4, "concurrent connections"),
      int_flag("distinct", 32,
               "distinct (base-seed, index) pairs; smaller = hotter cache"),
      int_flag("statements", 20, "generator: statements per benchmark"),
      int_flag("variables", 8, "generator: variable pool size"),
      int_flag("procs", 8, "scheduler: processor count"),
      bool_flag("verify", false, "request server-side verification"),
      bool_flag("no-cache", false, "bypass the schedule cache"),
      bool_flag("allow-reject", false,
                "tolerate rejected responses (overload experiments)"),
      bool_flag("stats", false, "poll the stats verb instead of sending load"),
      int_flag("interval-ms", 1000, "stats mode: poll interval"),
      int_flag("iterations", 0, "stats mode: polls before exiting (0 = forever)"),
  };

  try {
    const CliFlags flags(argc, argv);
    flags.validate(schema);
    const std::string socket_path = flags.get("socket", "");
    const std::int64_t port = flags.get_int("port", -1);
    if (socket_path.empty() && port < 0) {
      std::fprintf(stderr, "bmload: need --socket PATH or --port N\n");
      return 2;
    }
    if (flags.get_bool("stats", false))
      return run_stats_dashboard(
          socket_path, port,
          std::max<std::int64_t>(1, flags.get_int("interval-ms", 1000)),
          flags.get_int("iterations", 0));

    const std::size_t total =
        static_cast<std::size_t>(std::max<std::int64_t>(1, flags.get_int("requests", 1000)));
    const std::size_t conns = static_cast<std::size_t>(
        std::max<std::int64_t>(1, flags.get_int("connections", 4)));
    const std::size_t distinct = static_cast<std::size_t>(
        std::max<std::int64_t>(1, flags.get_int("distinct", 32)));
    const bool allow_reject = flags.get_bool("allow-reject", false);

    Request proto;
    proto.verb = Verb::kSynth;
    proto.gen.num_statements =
        static_cast<std::uint32_t>(flags.get_int("statements", 20));
    proto.gen.num_variables =
        static_cast<std::uint32_t>(flags.get_int("variables", 8));
    proto.sched.num_procs =
        static_cast<std::size_t>(flags.get_int("procs", 8));
    proto.verify = flags.get_bool("verify", false);
    proto.no_cache = flags.get_bool("no-cache", false);

    std::atomic<std::size_t> next_request{0};
    std::atomic<bool> failed{false};
    std::vector<WorkerReport> reports(conns);
    std::vector<std::thread> threads;
    const auto wall_start = std::chrono::steady_clock::now();

    for (std::size_t c = 0; c < conns; ++c) {
      threads.emplace_back([&, c] {
        WorkerReport& rep = reports[c];
        const int fd = do_connect(socket_path, port);
        if (fd < 0) {
          std::fprintf(stderr, "bmload: connection %zu failed to connect\n",
                       c);
          failed.store(true);
          return;
        }
        for (;;) {
          const std::size_t i = next_request.fetch_add(1);
          if (i >= total || failed.load()) break;
          Request req = proto;
          req.id = i + 1;
          req.index = i % distinct;

          const auto t0 = std::chrono::steady_clock::now();
          std::optional<std::string> payload;
          try {
            if (!write_frame(fd, encode_request(req))) {
              std::fprintf(stderr, "bmload: write failed (req %zu)\n", i);
              failed.store(true);
              break;
            }
            payload = read_frame(fd);
          } catch (const std::exception& e) {
            std::fprintf(stderr, "bmload: %s (req %zu)\n", e.what(), i);
            failed.store(true);
            break;
          }
          if (!payload) {
            std::fprintf(stderr, "bmload: server closed connection\n");
            failed.store(true);
            break;
          }
          const auto t1 = std::chrono::steady_clock::now();

          Response resp;
          try {
            resp = decode_response(*payload);
          } catch (const std::exception& e) {
            std::fprintf(stderr, "bmload: bad response: %s\n", e.what());
            failed.store(true);
            break;
          }
          if (resp.id != req.id) {
            std::fprintf(stderr, "bmload: id mismatch (%llu != %llu)\n",
                         static_cast<unsigned long long>(resp.id),
                         static_cast<unsigned long long>(req.id));
            failed.store(true);
            break;
          }
          switch (resp.status) {
            case Status::kOk:
              if (resp.body.empty() || resp.fingerprint.empty() ||
                  (proto.verify && resp.verify_errors != 0)) {
                std::fprintf(stderr, "bmload: bad ok response (req %zu)\n",
                             i);
                failed.store(true);
                break;
              }
              ++rep.ok;
              if (resp.cache == CacheOutcome::kHit) ++rep.hits;
              break;
            case Status::kRejected:
              ++rep.rejected;
              if (!allow_reject) {
                std::fprintf(stderr, "bmload: rejected: %s\n",
                             resp.error.c_str());
                failed.store(true);
              }
              break;
            default:
              ++rep.errors;
              std::fprintf(stderr, "bmload: server error: %s\n",
                           resp.error.c_str());
              failed.store(true);
              break;
          }
          rep.hist.add(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                  .count()));
        }
        ::close(fd);
      });
    }
    for (std::thread& t : threads) t.join();
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    WorkerReport all;
    for (const WorkerReport& r : reports) {
      all.ok += r.ok;
      all.hits += r.hits;
      all.rejected += r.rejected;
      all.errors += r.errors;
      all.hist.merge(r.hist);
    }

    std::printf(
        "bmload: %zu ok (%zu cache hits), %zu rejected, %zu errors\n",
        all.ok, all.hits, all.rejected, all.errors);
    std::printf(
        "bmload: p50 %llu us  p99 %llu us  max %llu us  qps %.0f\n",
        static_cast<unsigned long long>(all.hist.quantile(0.50)),
        static_cast<unsigned long long>(all.hist.quantile(0.99)),
        static_cast<unsigned long long>(all.hist.max),
        wall_s > 0 ? static_cast<double>(all.hist.count) / wall_s : 0.0);
    return failed.load() ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bmload: %s\n", e.what());
    return 2;
  }
}
