// bmverify — standalone static schedule verifier.
//
//   bmverify gen [flags]                  synthesize, schedule, verify; can
//                                         dump the source block + schedule
//                                         and inject a mutation first
//   bmverify check <block.bm> <sched.txt> verify a schedule file against a
//                                         source block (both as written by
//                                         `gen --dump-*`)
//   bmverify selftest [flags]             mutation campaign: delete/shift
//                                         barriers from verified schedules
//                                         and measure detector sensitivity
//
// Exit codes: 0 = clean (or selftest passed its bar), 1 = verifier errors
// (or selftest below the bar), 2 = usage / input errors.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "codegen/emitter.hpp"
#include "codegen/generator.hpp"
#include "codegen/parser.hpp"
#include "graph/instr_dag.hpp"
#include "ir/timing.hpp"
#include "opt/passes.hpp"
#include "sched/scheduler.hpp"
#include "sched/serialize.hpp"
#include "support/cli.hpp"
#include "verify/selftest.hpp"
#include "verify/verify.hpp"

namespace bm {
namespace {

int usage(std::ostream& os, int code) {
  os << "usage: bmverify <command> [args]\n"
        "\n"
        "commands:\n"
        "  gen       synthesize a block, schedule it, verify the schedule\n"
        "            --seed N --statements N --variables N --procs N\n"
        "            --policy conservative|optimal --machine sbm|dbm\n"
        "            --latency N --mutate-drop ID|random --json\n"
        "            --dump-source FILE --dump-schedule FILE\n"
        "  check     verify a schedule file against a source block\n"
        "            bmverify check <block.bm> <schedule.txt> [--json]\n"
        "  selftest  mutation campaign over random seeds\n"
        "            --mutations N --seed N --procs N --min-flagged F "
        "--json\n"
        "\n"
        "exit codes: 0 clean, 1 verifier errors / selftest failure, 2 usage\n";
  return code;
}

/// Renumbers variables by first appearance in (lhs, a, b) statement order —
/// exactly the interning order of parse_statements — so a dumped block
/// re-parses to the identical tuple program and instruction ids.
StatementList canonicalize_vars(const StatementList& in,
                                std::uint32_t& num_vars) {
  std::map<VarId, VarId> remap;
  auto intern = [&](VarId v) {
    const auto [it, fresh] =
        remap.try_emplace(v, static_cast<VarId>(remap.size()));
    (void)fresh;
    return it->second;
  };
  StatementList out;
  out.reserve(in.size());
  for (const Assign& s : in) {
    Assign t = s;
    t.lhs = intern(s.lhs);
    if (t.a.is_var()) t.a.var = intern(s.a.var);
    if (t.b.is_var()) t.b.var = intern(s.b.var);
    out.push_back(t);
  }
  num_vars = static_cast<std::uint32_t>(remap.size());
  return out;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary);
  BM_REQUIRE(os.good(), "cannot open " + path + " for writing");
  os << content;
  BM_REQUIRE(os.good(), "failed writing " + path);
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  BM_REQUIRE(is.good(), "cannot open " + path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

int report_and_exit_code(const VerifyReport& report, bool json) {
  if (json)
    std::cout << report.to_json();
  else
    std::cout << report.to_text();
  return report.clean() ? 0 : 1;
}

std::vector<BarrierId> droppable_barriers(const Schedule& sched) {
  std::vector<BarrierId> out;
  for (BarrierId b = 1; b < sched.barrier_id_bound(); ++b) {
    if (!sched.barrier_alive(b)) continue;
    if (sched.final_barrier() && *sched.final_barrier() == b) continue;
    out.push_back(b);
  }
  return out;
}

int cmd_gen(const CliFlags& flags) {
  flags.validate(
      {},
      {int_flag("seed", 1990, "RNG seed"),
       int_flag("statements", 24, "statements in the synthesized block"),
       int_flag("variables", 8, "variable pool size"),
       int_flag("procs", 4, "processors to schedule onto"),
       string_flag("policy", "conservative",
                   "barrier insertion: conservative|optimal"),
       string_flag("machine", "sbm", "target machine: sbm|dbm"),
       int_flag("latency", 0, "hardware barrier latency (cycles)"),
       string_flag("mutate-drop", "",
                   "delete barrier ID (or 'random') before verifying"),
       bool_flag("json", false, "machine-readable report"),
       string_flag("dump-source", "", "write the source block to FILE"),
       string_flag("dump-schedule", "", "write the schedule text to FILE")});

  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1990));
  Rng rng(seed);
  GeneratorConfig gen;
  gen.num_statements =
      static_cast<std::uint32_t>(flags.get_int("statements", 24));
  gen.num_variables =
      static_cast<std::uint32_t>(flags.get_int("variables", 8));
  std::uint32_t num_vars = 0;
  const StatementList stmts =
      canonicalize_vars(StatementGenerator(gen).generate(rng), num_vars);

  if (const std::string path = flags.get("dump-source", ""); !path.empty()) {
    std::ostringstream os;
    os << "# bmverify gen --seed " << seed << " --statements "
       << gen.num_statements << " --variables " << gen.num_variables << "\n";
    for (const Assign& s : stmts) os << statement_to_string(s) << '\n';
    write_file(path, os.str());
  }

  Program prog = emit_tuples(stmts, num_vars);
  optimize(prog);
  const InstrDag dag = InstrDag::build(prog, TimingModel::table1());

  SchedulerConfig cfg;
  cfg.num_procs = static_cast<std::size_t>(flags.get_int("procs", 4));
  const std::string policy = flags.get("policy", "conservative");
  BM_REQUIRE(policy == "conservative" || policy == "optimal",
             "--policy must be conservative or optimal");
  cfg.insertion = policy == "optimal" ? InsertionPolicy::kOptimal
                                      : InsertionPolicy::kConservative;
  const std::string machine = flags.get("machine", "sbm");
  BM_REQUIRE(machine == "sbm" || machine == "dbm",
             "--machine must be sbm or dbm");
  cfg.machine = machine == "dbm" ? MachineKind::kDBM : MachineKind::kSBM;
  cfg.barrier_latency = flags.get_int("latency", 0);

  ScheduleResult sr = schedule_program(dag, cfg, rng);
  Schedule& sched = *sr.schedule;

  if (const std::string drop = flags.get("mutate-drop", ""); !drop.empty()) {
    const std::vector<BarrierId> candidates = droppable_barriers(sched);
    if (candidates.empty()) {
      std::cerr << "bmverify gen: schedule has no droppable barrier\n";
      return 2;
    }
    BarrierId victim;
    if (drop == "random") {
      victim = candidates[rng.index(candidates.size())];
    } else {
      victim = static_cast<BarrierId>(std::stoul(drop));
      BM_REQUIRE(std::find(candidates.begin(), candidates.end(), victim) !=
                     candidates.end(),
                 "--mutate-drop: barrier " + drop +
                     " is not a droppable barrier of this schedule");
    }
    sched.remove_barrier(victim);
    std::cerr << "bmverify gen: dropped barrier B" << victim << '\n';
  }

  if (const std::string path = flags.get("dump-schedule", ""); !path.empty())
    write_file(path, schedule_to_text(sched));

  return report_and_exit_code(verify_schedule(dag, sched),
                              flags.get_bool("json", false));
}

int cmd_check(const CliFlags& flags) {
  flags.validate({}, {bool_flag("json", false, "machine-readable report")});
  if (flags.positional().size() != 2) {
    std::cerr << "bmverify check: need <block.bm> <schedule.txt>\n";
    return 2;
  }
  const ParsedBlock block = parse_statements(read_file(flags.positional()[0]));
  Program prog = emit_tuples(block.statements, block.num_vars);
  optimize(prog);
  const InstrDag dag = InstrDag::build(prog, TimingModel::table1());
  const Schedule sched =
      schedule_from_text(dag, read_file(flags.positional()[1]));
  return report_and_exit_code(verify_schedule(dag, sched),
                              flags.get_bool("json", false));
}

int cmd_selftest(const CliFlags& flags) {
  flags.validate(
      {}, {int_flag("mutations", 200, "mutations to inject"),
           int_flag("seed", 0xB1D5, "base seed of the campaign"),
           int_flag("procs", 8, "processors per schedule"),
           double_flag("min-flagged", 0.95,
                       "minimum flagged fraction to pass (0..1)"),
           bool_flag("json", false, "machine-readable report")});
  MutationConfig cfg;
  cfg.mutations = static_cast<std::size_t>(flags.get_int("mutations", 200));
  cfg.base_seed = static_cast<std::uint64_t>(flags.get_int("seed", 0xB1D5));
  cfg.num_procs = static_cast<std::size_t>(flags.get_int("procs", 8));
  const double min_flagged = flags.get_double("min-flagged", 0.95);

  const MutationReport report = run_mutation_selftest(cfg);
  if (flags.get_bool("json", false))
    std::cout << report.to_json();
  else
    std::cout << report.to_text();

  const bool pass = report.flagged_fraction() >= min_flagged &&
                    report.missed == 0 && report.baseline_dirty == 0;
  if (!pass)
    std::cerr << "bmverify selftest: FAILED (flagged fraction "
              << report.flagged_fraction() << " < " << min_flagged
              << ", or missed/baseline-dirty nonzero)\n";
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace bm

int main(int argc, char** argv) {
  using namespace bm;
  if (argc < 2) return usage(std::cerr, 2);
  const std::string cmd = argv[1];
  try {
    const CliFlags flags(argc - 1, argv + 1);
    if (cmd == "gen") return cmd_gen(flags);
    if (cmd == "check") return cmd_check(flags);
    if (cmd == "selftest") return cmd_selftest(flags);
    if (cmd == "help" || cmd == "--help" || cmd == "-h")
      return usage(std::cout, 0);
    std::cerr << "bmverify: unknown command '" << cmd << "'\n";
    return usage(std::cerr, 2);
  } catch (const std::exception& e) {
    std::cerr << "bmverify: " << e.what() << '\n';
    return 2;
  }
}
