// bmexec — run verified schedules natively on hardware threads.
//
//   bmexec emit [gen flags] [--out FILE]     lower a schedule and print the
//                                            generated standalone C++ TU
//   bmexec run [gen flags] [exec flags]      execute natively and diff the
//                                            final state against the
//                                            value-accurate simulator and
//                                            the order-independent oracle
//   bmexec calibrate [gen flags] [--repeats N --rounds N]
//                                            per-primitive barrier overhead
//                                            and measured-vs-predicted
//                                            envelope report
//
// Generation flags (shared; the same pipeline as bmverify gen):
//   --seed N --statements N --variables N --procs N
//   --policy conservative|optimal --machine sbm|dbm --latency N
//
// Exit codes: 0 = success (run: all executions value-identical),
// 1 = value mismatch, 2 = usage / input / environment errors.
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "codegen/synthesize.hpp"
#include "exec/calibrate.hpp"
#include "exec/jit.hpp"
#include "exec/lower.hpp"
#include "exec/runtime.hpp"
#include "graph/instr_dag.hpp"
#include "ir/interp.hpp"
#include "ir/timing.hpp"
#include "obs/trace.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"
#include "sim/value_sim.hpp"
#include "support/cli.hpp"

namespace bm {
namespace {

int usage(std::ostream& os, int code) {
  os << "usage: bmexec <command> [flags]\n"
        "\n"
        "commands:\n"
        "  emit       print the schedule lowered to a standalone C++ TU\n"
        "             --out FILE\n"
        "  run        execute natively and check values\n"
        "             --barrier central|tree|both --threads N (0 = one per\n"
        "             PE) --spin N --pin --compiled --trace FILE --json\n"
        "  calibrate  measured vs predicted envelopes, barrier overhead\n"
        "             --repeats N --rounds N --spin N --pin\n"
        "\n"
        "generation flags (all commands):\n"
        "  --seed N --statements N --variables N --procs N\n"
        "  --policy conservative|optimal --machine sbm|dbm --latency N\n"
        "\n"
        "exit codes: 0 ok, 1 value mismatch, 2 usage/input errors\n";
  return code;
}

std::vector<FlagSpec> gen_flags() {
  return {int_flag("seed", 1990, "RNG seed"),
          int_flag("statements", 24, "statements in the synthesized block"),
          int_flag("variables", 8, "variable pool size"),
          int_flag("procs", 8, "processors to schedule onto"),
          string_flag("policy", "conservative",
                      "barrier insertion: conservative|optimal"),
          string_flag("machine", "sbm", "target machine: sbm|dbm"),
          int_flag("latency", 0, "hardware barrier latency (cycles)")};
}

std::vector<FlagSpec> with_gen(std::vector<FlagSpec> extra) {
  std::vector<FlagSpec> all = gen_flags();
  for (FlagSpec& f : extra) all.push_back(std::move(f));
  return all;
}

/// The generated program + schedule. Non-movable: the Schedule holds a
/// pointer into `dag`.
struct Built {
  Program prog{0};
  std::optional<InstrDag> dag;
  ScheduleResult sr;
  SchedulerConfig cfg;
  Built() = default;
  Built(const Built&) = delete;
  Built& operator=(const Built&) = delete;
};

std::unique_ptr<Built> build(const CliFlags& flags) {
  auto b = std::make_unique<Built>();
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1990)));
  GeneratorConfig gen;
  gen.num_statements =
      static_cast<std::uint32_t>(flags.get_int("statements", 24));
  gen.num_variables =
      static_cast<std::uint32_t>(flags.get_int("variables", 8));
  b->prog = synthesize_benchmark(gen, rng).program;
  b->dag.emplace(InstrDag::build(b->prog, TimingModel::table1()));

  b->cfg.num_procs = static_cast<std::size_t>(flags.get_int("procs", 8));
  const std::string policy = flags.get("policy", "conservative");
  BM_REQUIRE(policy == "conservative" || policy == "optimal",
             "--policy must be conservative or optimal");
  b->cfg.insertion = policy == "optimal" ? InsertionPolicy::kOptimal
                                         : InsertionPolicy::kConservative;
  const std::string machine = flags.get("machine", "sbm");
  BM_REQUIRE(machine == "sbm" || machine == "dbm",
             "--machine must be sbm or dbm");
  b->cfg.machine = machine == "dbm" ? MachineKind::kDBM : MachineKind::kSBM;
  b->cfg.barrier_latency = flags.get_int("latency", 0);
  b->sr = schedule_program(*b->dag, b->cfg, rng);
  return b;
}

int cmd_emit(const CliFlags& flags) {
  flags.validate(
      {}, with_gen({string_flag("out", "", "write the TU to FILE")}));
  const auto b = build(flags);
  const exec::LoweredProgram lp = exec::lower(b->prog, *b->sr.schedule);
  const std::string tu = exec::emit_cpp(lp);
  if (const std::string out = flags.get("out", ""); !out.empty()) {
    std::ofstream os(out, std::ios::binary);
    os << tu;
    BM_REQUIRE(os.good(), "failed writing " + out);
    std::cerr << "bmexec emit: wrote " << out << " (" << lp.num_procs
              << " PEs, " << lp.barriers.size() << " barriers, "
              << lp.total_ops << " ops)\n";
  } else {
    std::cout << tu;
  }
  return 0;
}

bool state_matches(const std::vector<std::int64_t>& mem,
                   const std::vector<std::int64_t>& val,
                   const EvalResult& oracle) {
  return mem == oracle.memory && val == oracle.values;
}

/// First few mismatching slots, for the human on the other end of a
/// failing `bmexec run`.
void print_diff(std::ostream& os, const char* what,
                const std::vector<std::int64_t>& got,
                const std::vector<std::int64_t>& want) {
  int shown = 0;
  for (std::size_t i = 0; i < got.size() && i < want.size() && shown < 8;
       ++i) {
    if (got[i] != want[i]) {
      os << "  " << what << "[" << i << "] = " << got[i] << ", expected "
         << want[i] << "\n";
      ++shown;
    }
  }
}

int cmd_run(const CliFlags& flags) {
  flags.validate(
      {},
      with_gen(
          {string_flag("barrier", "both",
                       "primitive: central|tree|both"),
           int_flag("threads", 0, "carrier threads (0 = one per PE)"),
           int_flag("spin", 128, "spin bound before yielding"),
           bool_flag("pin", false, "pin thread k to cpu k"),
           bool_flag("compiled", false,
                     "also run the dlopen-compiled emission"),
           string_flag("trace", "", "write a Perfetto timeline to FILE"),
           bool_flag("json", false, "machine-readable summary")}));
  const auto b = build(flags);
  const Schedule& sched = *b->sr.schedule;
  const exec::LoweredProgram lp = exec::lower(b->prog, sched);

  // Two independent references: the order-independent oracle and the
  // value-accurate simulator replaying a simulated trace's order.
  const EvalResult oracle = eval_program(b->prog, {});
  Rng sim_rng(static_cast<std::uint64_t>(flags.get_int("seed", 1990)) ^
              0x5157u);
  SimConfig sim_cfg;
  sim_cfg.machine = b->cfg.machine;
  const ExecTrace trace = simulate(sched, sim_cfg, sim_rng);
  const ValueSimResult vsim = simulate_values(b->prog, sched, trace);
  if (!state_matches(vsim.memory, vsim.values, oracle)) {
    std::cerr << "bmexec run: INTERNAL: value simulator disagrees with the "
                 "oracle\n";
    return 1;
  }

  std::vector<exec::BarrierKind> kinds;
  const std::string which = flags.get("barrier", "both");
  if (which == "both")
    kinds.assign(std::begin(exec::kAllBarrierKinds),
                 std::end(exec::kAllBarrierKinds));
  else
    kinds.push_back(exec::barrier_kind_from_name(which));

  const bool json = flags.get_bool("json", false);
  bool all_ok = true;
  std::ostringstream jout;
  jout << "{\"runs\":[";
  bool first = true;
  exec::ExecResult last;
  for (const exec::BarrierKind kind : kinds) {
    exec::ExecOptions eo;
    eo.barrier = kind;
    eo.threads = static_cast<std::uint32_t>(flags.get_int("threads", 0));
    eo.spin_iters = static_cast<std::uint32_t>(flags.get_int("spin", 128));
    eo.pin = flags.get_bool("pin", false);
    const exec::ExecResult r = exec::execute(lp, eo);
    const bool ok = state_matches(r.memory, r.values, oracle);
    all_ok = all_ok && ok;
    if (json) {
      jout << (first ? "" : ",") << "{\"barrier\":\""
           << exec::barrier_kind_name(kind) << "\",\"backend\":\"interp\""
           << ",\"threads\":" << r.carrier_threads
           << ",\"blocking\":" << (r.blocking ? "true" : "false")
           << ",\"wall_ns\":" << r.wall_ns << ",\"spins\":" << r.spins
           << ",\"yields\":" << r.yields
           << ",\"match\":" << (ok ? "true" : "false") << "}";
      first = false;
    } else {
      std::cout << "[" << exec::barrier_kind_name(kind) << "/interp] "
                << r.carrier_threads
                << (r.blocking ? " threads (one per PE), " : " carriers, ")
                << r.wall_ns << " ns wall, " << r.spins << " spins, "
                << r.yields << " yields: "
                << (ok ? "values MATCH" : "values MISMATCH") << "\n";
    }
    if (!ok) {
      print_diff(std::cerr, "mem", r.memory, oracle.memory);
      print_diff(std::cerr, "val", r.values, oracle.values);
    }
    last = r;

    if (flags.get_bool("compiled", false)) {
      if (!exec::JitModule::available()) {
        std::cerr << "bmexec run: --compiled unavailable (no compiler, "
                     "sanitized build, or BM_EXEC_NO_JIT); skipping\n";
      } else {
        const exec::JitModule mod(lp);
        const exec::ExecResult jr = mod.run(eo);
        const bool jok = state_matches(jr.memory, jr.values, oracle);
        all_ok = all_ok && jok;
        if (json) {
          jout << ",{\"barrier\":\"" << exec::barrier_kind_name(kind)
               << "\",\"backend\":\"compiled\",\"threads\":"
               << jr.carrier_threads << ",\"blocking\":true,\"wall_ns\":"
               << jr.wall_ns << ",\"match\":" << (jok ? "true" : "false")
               << "}";
        } else {
          std::cout << "[" << exec::barrier_kind_name(kind) << "/compiled] "
                    << jr.carrier_threads << " threads (one per PE), "
                    << jr.wall_ns << " ns wall: "
                    << (jok ? "values MATCH" : "values MISMATCH") << "\n";
        }
      }
    }
  }
  if (json) {
    jout << "],\"match\":" << (all_ok ? "true" : "false") << "}\n";
    std::cout << jout.str();
  }

  if (const std::string path = flags.get("trace", ""); !path.empty()) {
    std::ofstream os(path, std::ios::binary);
    const std::size_t n = obs::write_trace_events_json(
        os, exec::exec_trace_events(lp, last),
        {{exec::kExecPid, "native execution"}});
    BM_REQUIRE(os.good(), "failed writing " + path);
    std::cerr << "bmexec run: wrote " << n << " trace events to " << path
              << "\n";
  }
  return all_ok ? 0 : 1;
}

int cmd_calibrate(const CliFlags& flags) {
  flags.validate(
      {},
      with_gen({int_flag("repeats", 5, "program runs per primitive"),
                int_flag("rounds", 2000, "barrier crossings to average"),
                int_flag("spin", 128, "spin bound before yielding"),
                bool_flag("pin", false, "pin thread k to cpu k")}));
  const auto b = build(flags);
  const exec::LoweredProgram lp = exec::lower(b->prog, *b->sr.schedule);
  exec::CalibrateOptions co;
  co.repeats = static_cast<std::uint32_t>(flags.get_int("repeats", 5));
  co.barrier_rounds =
      static_cast<std::uint32_t>(flags.get_int("rounds", 2000));
  co.spin_iters = static_cast<std::uint32_t>(flags.get_int("spin", 128));
  co.pin = flags.get_bool("pin", false);
  std::cout << format_calibration(exec::calibrate(lp, co));
  return 0;
}

}  // namespace
}  // namespace bm

int main(int argc, char** argv) {
  using namespace bm;
  if (argc < 2) return usage(std::cerr, 2);
  const std::string cmd = argv[1];
  try {
    const CliFlags flags(argc - 1, argv + 1);
    if (cmd == "emit") return cmd_emit(flags);
    if (cmd == "run") return cmd_run(flags);
    if (cmd == "calibrate") return cmd_calibrate(flags);
    if (cmd == "help" || cmd == "--help" || cmd == "-h")
      return usage(std::cout, 0);
    std::cerr << "bmexec: unknown command '" << cmd << "'\n";
    return usage(std::cerr, 2);
  } catch (const std::exception& e) {
    std::cerr << "bmexec: " << e.what() << '\n';
    return 2;
  }
}
