// Conventional-MIMD baseline (§1, Fig. 3): the same node placement, but
// every cross-processor producer→consumer pair is enforced by a *runtime*
// directed synchronization — the producer posts a synchronization object
// that travels through the network for a stochastic latency, and the
// consumer blocks until it arrives. This is the machine the paper's ">77%
// of synchronizations need no runtime synchronization" headline is measured
// against.
#pragma once

#include <span>
#include <utility>

#include "sched/schedule.hpp"
#include "sim/sampler.hpp"
#include "sim/trace.hpp"

namespace bm {

struct DirectedSyncConfig {
  /// Cycles the producer spends executing the post/signal operation.
  Time post_cost = 1;
  /// Network transit latency range of the synchronization object (§3: "a
  /// potentially unbounded amount of time dependent on routing and
  /// traffic"); drawn per edge per run.
  TimeRange latency{1, 8};
  SamplingMode sampling = SamplingMode::kUniform;
};

struct DirectedSyncResult {
  ExecTrace trace;               ///< barrier_fire left empty
  std::size_t runtime_syncs = 0; ///< directed sync operations executed
};

/// Executes the schedule's instruction placement under directed-sync
/// semantics. Barrier entries in the streams are ignored (the conventional
/// machine has none); instruction order per processor is preserved. Every
/// cross-processor dependence edge costs the producer `post_cost` once per
/// consumer processor and delays the consumer by the drawn latency.
DirectedSyncResult simulate_directed(const Schedule& sched,
                                     const DirectedSyncConfig& config,
                                     Rng& rng);

/// Same, but synchronizing only the given producer→consumer pairs (e.g. the
/// `kept` set of a SyncReduction); elided pairs must be implied by program
/// order plus the retained pairs, or the trace will show violations.
DirectedSyncResult simulate_directed(
    const Schedule& sched, const DirectedSyncConfig& config, Rng& rng,
    std::span<const std::pair<NodeId, NodeId>> sync_edges);

}  // namespace bm
