#include "mimd/directed.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace bm {

DirectedSyncResult simulate_directed(const Schedule& sched,
                                     const DirectedSyncConfig& config,
                                     Rng& rng) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (const auto& [g, i] : sched.instr_dag().sync_edges()) {
    if (!sched.placed(g) || !sched.placed(i)) continue;
    if (sched.loc(g).proc == sched.loc(i).proc) continue;
    edges.emplace_back(g, i);
  }
  return simulate_directed(sched, config, rng, edges);
}

DirectedSyncResult simulate_directed(
    const Schedule& sched, const DirectedSyncConfig& config, Rng& rng,
    std::span<const std::pair<NodeId, NodeId>> sync_edges) {
  BM_REQUIRE(config.post_cost >= 0, "post cost must be >= 0");
  BM_REQUIRE(config.latency.valid(), "invalid latency range");

  const InstrDag& dag = sched.instr_dag();
  DirectedSyncResult result;
  ExecTrace& trace = result.trace;
  const std::size_t n = dag.num_instructions();
  trace.start.assign(n, kNotExecuted);
  trace.finish.assign(n, kNotExecuted);

  // Cross-processor consumers per producer; a producer posts once per
  // distinct consumer processor (one signal wakes all its readers there).
  std::vector<std::vector<NodeId>> cross_preds(n);
  std::vector<std::size_t> post_ops(n, 0);
  for (const auto& [g, i] : sync_edges) {
    BM_REQUIRE(g < n && i < n && sched.placed(g) && sched.placed(i),
               "sync edge references unplaced instruction");
    if (sched.loc(g).proc == sched.loc(i).proc) continue;
    cross_preds[i].push_back(g);
  }
  std::vector<std::vector<ProcId>> posted(n);
  for (NodeId i = 0; i < n; ++i) {
    const ProcId consumer_proc = sched.placed(i) ? sched.loc(i).proc : 0;
    for (NodeId g : cross_preds[i]) {
      auto& procs = posted[g];
      if (std::find(procs.begin(), procs.end(), consumer_proc) == procs.end()) {
        procs.push_back(consumer_proc);
        ++post_ops[g];
      }
    }
  }

  // Per-processor in-order execution. An instruction may start once the
  // processor is free and every cross-processor producer's signal has
  // arrived. Streams follow list order, so this never deadlocks.
  std::vector<Time> proc_time(sched.num_procs(), 0);
  std::vector<std::uint32_t> idx(sched.num_procs(), 0);
  std::vector<Time> signal_arrival(n, kNotExecuted);

  auto try_advance = [&](ProcId p) -> bool {
    const auto& stream = sched.stream(p);
    while (idx[p] < stream.size() && stream[idx[p]].is_barrier) ++idx[p];
    if (idx[p] >= stream.size()) return false;
    const NodeId node = stream[idx[p]].id;
    Time ready = proc_time[p];
    for (NodeId g : cross_preds[node]) {
      if (signal_arrival[g] == kNotExecuted) return false;  // not posted yet
      ready = std::max(ready, signal_arrival[g]);
    }
    trace.start[node] = ready;
    Time finish = ready + sample_time(dag.time(node), config.sampling, rng);
    trace.finish[node] = finish;
    // Post signals to consumer processors after executing the sync ops.
    if (post_ops[node] > 0) {
      finish += config.post_cost * static_cast<Time>(post_ops[node]);
      signal_arrival[node] =
          finish + sample_time(config.latency, config.sampling, rng);
      result.runtime_syncs += post_ops[node];
    }
    proc_time[p] = finish;
    ++idx[p];
    return true;
  };

  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (ProcId p = 0; p < sched.num_procs(); ++p)
      while (try_advance(p)) progressed = true;
  }
  for (ProcId p = 0; p < sched.num_procs(); ++p) {
    const auto& stream = sched.stream(p);
    std::uint32_t remaining = idx[p];
    while (remaining < stream.size() && stream[remaining].is_barrier)
      ++remaining;
    BM_ASSERT_INTERNAL(remaining >= stream.size(),
                       "directed-sync simulation deadlocked");
    trace.completion = std::max(trace.completion, proc_time[p]);
  }
  return result;
}

}  // namespace bm
