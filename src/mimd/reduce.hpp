// Shaffer-style synchronization elision for conventional MIMDs ([Shaf89],
// cited in §3): a directed synchronization for a cross-processor dependence
// g→i is redundant when the remaining graph — per-processor program order
// plus the other retained synchronizations — already orders g before i.
// This is the *structural* subset of what barrier scheduling achieves; the
// paper's contribution is the additional *timing*-based elision, so the gap
// between the two is exactly the value of min/max execution-time tracking.
#pragma once

#include "sched/schedule.hpp"

namespace bm {

struct SyncReduction {
  std::size_t total_cross_edges = 0;   ///< directed syncs before reduction
  std::size_t retained = 0;            ///< syncs that must stay
  std::size_t elided = 0;              ///< removed as transitively implied
  /// Kept edges (producer, consumer), for the directed-sync simulator.
  std::vector<std::pair<NodeId, NodeId>> kept;

  double elision_fraction() const {
    return total_cross_edges == 0
               ? 0.0
               : static_cast<double>(elided) /
                     static_cast<double>(total_cross_edges);
  }
};

/// Computes the transitive reduction of the cross-processor dependence
/// edges over the schedule's instruction placement (program order within
/// each processor is free). Edges are considered in a deterministic order;
/// an edge is elided iff the remaining structure still orders its
/// endpoints.
SyncReduction reduce_directed_syncs(const Schedule& sched);

}  // namespace bm
