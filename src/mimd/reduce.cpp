#include "mimd/reduce.hpp"

#include <algorithm>
#include <set>

#include "support/assert.hpp"

namespace bm {

namespace {

/// Is `to` reachable from `from` over chain edges + the given sync edges,
/// excluding the sync edge at index `skip`?
bool reachable_without(
    const std::vector<std::vector<NodeId>>& chain_succs,
    const std::vector<std::pair<NodeId, NodeId>>& syncs,
    const std::vector<bool>& active, std::size_t skip, NodeId from,
    NodeId to) {
  std::vector<bool> visited(chain_succs.size(), false);
  std::vector<NodeId> stack{from};
  visited[from] = true;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (n == to) return true;
    for (NodeId s : chain_succs[n]) {
      if (!visited[s]) {
        visited[s] = true;
        stack.push_back(s);
      }
    }
    for (std::size_t k = 0; k < syncs.size(); ++k) {
      if (k == skip || !active[k]) continue;
      if (syncs[k].first != n) continue;
      const NodeId s = syncs[k].second;
      if (!visited[s]) {
        visited[s] = true;
        stack.push_back(s);
      }
    }
  }
  return false;
}

}  // namespace

SyncReduction reduce_directed_syncs(const Schedule& sched) {
  const InstrDag& dag = sched.instr_dag();
  const std::size_t n = dag.num_instructions();

  // Per-processor program-order chains (barriers ignored: the conventional
  // machine has none).
  std::vector<std::vector<NodeId>> chain_succs(n);
  for (ProcId p = 0; p < sched.num_procs(); ++p) {
    NodeId prev = kInvalidNode;
    for (const ScheduleEntry& e : sched.stream(p)) {
      if (e.is_barrier) continue;
      if (prev != kInvalidNode) chain_succs[prev].push_back(e.id);
      prev = e.id;
    }
  }

  // Distinct cross-processor dependence pairs, in deterministic order.
  std::vector<std::pair<NodeId, NodeId>> syncs;
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const auto& [g, i] : dag.sync_edges()) {
    BM_REQUIRE(sched.placed(g) && sched.placed(i),
               "all instructions must be placed");
    if (sched.loc(g).proc == sched.loc(i).proc) continue;
    if (seen.insert({g, i}).second) syncs.emplace_back(g, i);
  }

  SyncReduction out;
  out.total_cross_edges = syncs.size();
  std::vector<bool> active(syncs.size(), true);
  for (std::size_t k = 0; k < syncs.size(); ++k) {
    if (reachable_without(chain_succs, syncs, active, k, syncs[k].first,
                          syncs[k].second)) {
      active[k] = false;
      ++out.elided;
    }
  }
  for (std::size_t k = 0; k < syncs.size(); ++k)
    if (active[k]) out.kept.push_back(syncs[k]);
  out.retained = out.kept.size();
  return out;
}

}  // namespace bm
