// Tiny command-line flag parser for the bench/tool binaries.
// Supports --name=value, --name value, and boolean --name forms, and can
// validate the parsed flags against a declared schema so that a misspelled
// flag (e.g. --sseeds) is an error instead of a silently ignored default.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace bm {

/// Value type of a declared flag; used for schema validation and help text.
enum class FlagType { kInt, kDouble, kBool, kString };

std::string_view to_string(FlagType t);

/// One declared flag: the single source of truth for its name, type,
/// default (rendered as text, shown by `bmrun describe`), and help line.
struct FlagSpec {
  std::string name;
  FlagType type = FlagType::kInt;
  std::string def;
  std::string help;
};

/// Flag-schema builders; `CliFlags::validate` rejects anything undeclared.
FlagSpec int_flag(const std::string& name, std::int64_t def,
                  const std::string& help);
FlagSpec double_flag(const std::string& name, double def,
                     const std::string& help);
FlagSpec bool_flag(const std::string& name, bool def, const std::string& help);
FlagSpec string_flag(const std::string& name, const std::string& def,
                     const std::string& help);

class CliFlags {
 public:
  /// Parses argv; throws bm::Error on malformed input (e.g. value missing).
  /// A token after `--name` is taken as its value unless it itself looks
  /// like a flag; a negative number (`--delta -3`) is a value, not a flag.
  CliFlags(int argc, const char* const* argv);

  /// Convenience for tests: parses as if argv were {prog, args...}.
  explicit CliFlags(const std::vector<std::string>& args);

  /// Schema validation: every parsed flag must be declared in `schema`
  /// (plus `extra`, for driver-level flags like --all), and its value must
  /// parse as the declared type. Throws bm::Error naming the bad flag and
  /// listing the accepted ones.
  void validate(const std::vector<FlagSpec>& schema,
                const std::vector<FlagSpec>& extra = {}) const;

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Worker count from the conventional `--jobs N` flag: missing = `def`
  /// (serial by default), `0` or `auto` = one worker per hardware thread.
  std::size_t get_jobs(std::size_t def = 1) const;

  /// Non-flag positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace bm
