// Tiny command-line flag parser for the bench and example binaries.
// Supports --name=value, --name value, and boolean --name forms.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bm {

class CliFlags {
 public:
  /// Parses argv; throws bm::Error on malformed input (e.g. value missing).
  CliFlags(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Worker count from the conventional `--jobs N` flag: missing = `def`
  /// (serial by default), `0` or `auto` = one worker per hardware thread.
  std::size_t get_jobs(std::size_t def = 1) const;

  /// Non-flag positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace bm
