// Minimal JSON reader for in-repo consumers of machine-readable output:
// bmload's `--stats` dashboard parses the `stats v1` snapshot, and the
// telemetry tests parse stats bodies, access-log lines, and slow-trace
// files. Strict enough to reject malformed documents (tests rely on
// that), small enough to stay dependency-free.
//
// This is a *reader*, not a data model: parse(), then navigate with
// find()/at() and unwrap with num()/str(). Writers in this repo emit JSON
// by hand (harness/artifacts.cpp, obs/trace.cpp, serve/telemetry.cpp) —
// keeping the two directions separate keeps both trivial.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace bm::json {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Value> items;               ///< kArray
  std::map<std::string, Value> members;   ///< kObject

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;
  /// Nested lookup: find("a", "b") == find("a")->find("b").
  template <typename... Rest>
  const Value* find(std::string_view key, Rest... rest) const {
    const Value* v = find(key);
    return v == nullptr ? nullptr : v->find(rest...);
  }

  /// Numeric value of the member at the given path; `def` when the path is
  /// absent or non-numeric.
  template <typename... Keys>
  double num(double def, Keys... keys) const {
    const Value* v = find(keys...);
    return v != nullptr && v->is_number() ? v->number : def;
  }
  /// String value at the given path; `def` when absent or non-string.
  template <typename... Keys>
  std::string str(std::string def, Keys... keys) const {
    const Value* v = find(keys...);
    return v != nullptr && v->is_string() ? v->string : std::move(def);
  }
};

/// Parses one JSON document (the whole input must be consumed). Throws
/// bm::Error with a byte offset on malformed input.
Value parse(std::string_view text);

}  // namespace bm::json
