#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace bm {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_), m = static_cast<double>(other.n_);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  mean_ = (n * mean_ + m * other.mean_) / (n + m);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double q) {
  BM_REQUIRE(!values.empty(), "percentile of empty series");
  BM_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q must be in [0,1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double correlation(const std::vector<double>& xs,
                   const std::vector<double>& ys) {
  BM_REQUIRE(xs.size() == ys.size(), "correlation needs equal lengths");
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0 || syy == 0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  BM_REQUIRE(bins > 0, "histogram needs at least one bin");
  BM_REQUIRE(lo < hi, "histogram range must be non-empty");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>(std::floor(t));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

}  // namespace bm
