#include "support/interleave.hpp"

#include <cstdio>
#include <cstdlib>
#include <semaphore>
#include <thread>
#include <utility>

namespace bm::ix {

namespace {

/// Thrown inside a worker to unwind its body when the execution is
/// abandoned (violation found, or backtracking past a pruned branch).
struct AbortExec {};

std::string u64s(std::uint64_t v) { return std::to_string(v); }

}  // namespace

const char* memorder_name(MemOrder mo) {
  switch (mo) {
    case MemOrder::kRelaxed: return "relaxed";
    case MemOrder::kAcquire: return "acquire";
    case MemOrder::kRelease: return "release";
    case MemOrder::kAcqRel: return "acq_rel";
    case MemOrder::kSeqCst: return "seq_cst";
  }
  return "?";
}

const char* violation_kind_name(Violation::Kind k) {
  switch (k) {
    case Violation::Kind::kCheck: return "check";
    case Violation::Kind::kInvariant: return "invariant";
    case Violation::Kind::kDataRace: return "data-race";
    case Violation::Kind::kDeadlock: return "deadlock";
    case Violation::Kind::kStepLimit: return "step-limit";
  }
  return "?";
}

namespace detail {
namespace {
thread_local Explorer* t_cur = nullptr;
thread_local int t_tid = -1;
}  // namespace
Explorer* cur() { return t_cur; }
int cur_tid() { return t_tid; }
}  // namespace detail

using detail::CellState;
using detail::kMaxThreads;
using detail::PlainState;
using detail::StoreRecord;
using detail::VectorClock;

namespace {

constexpr bool has_acquire(MemOrder mo) {
  return mo == MemOrder::kAcquire || mo == MemOrder::kAcqRel ||
         mo == MemOrder::kSeqCst;
}
constexpr bool has_release(MemOrder mo) {
  return mo == MemOrder::kRelease || mo == MemOrder::kAcqRel ||
         mo == MemOrder::kSeqCst;
}

/// What a yielded thread wants to do next. Published before blocking so
/// the scheduler can test enabledness (mutex/await) and op dependence
/// (sleep sets) without running the thread.
struct OpDesc {
  enum class Kind {
    kNone,
    kLoad,
    kStore,
    kRmw,
    kAwait,
    kPlainRead,
    kPlainWrite,
    kLock,
    kUnlock,
  };
  Kind kind = Kind::kNone;
  const void* obj = nullptr;
  std::function<bool()> enabled;  ///< null = always enabled
  bool write_like = false;
  std::string what;  ///< "cache.mu.lock()" — deadlock and trace text
};

/// Two pending/executed ops commute iff they touch different objects or
/// are both pure reads. Used for sleep-set wakeups.
bool independent_ops(const OpDesc& a, const OpDesc& b) {
  if (a.kind == OpDesc::Kind::kNone || b.kind == OpDesc::Kind::kNone)
    return false;  // unknown: conservatively dependent
  if (a.obj != b.obj) return true;
  return !a.write_like && !b.write_like;
}

}  // namespace

class Explorer {
 public:
  Explorer(const Options& opts, std::function<void(Env&)> program)
      : opts_(opts), program_(std::move(program)) {}

  ~Explorer() {
    exit_ = true;
    for (int i = 0; i < nthreads_; ++i) threads_[i].go.release();
    for (int i = 0; i < nthreads_; ++i)
      if (threads_[i].worker.joinable()) threads_[i].worker.join();
  }

  Explorer(const Explorer&) = delete;
  Explorer& operator=(const Explorer&) = delete;

  Result run();

  // -- worker-side hooks (exactly one worker runs at a time) --------------

  void yield(OpDesc op);
  [[noreturn]] void fail(Violation::Kind kind, std::string msg);

  std::uint64_t cell_load(CellState& c, MemOrder mo);
  void cell_store(CellState& c, std::uint64_t val, MemOrder mo);
  std::uint64_t cell_rmw_read(CellState& c, MemOrder mo);
  void cell_rmw_write(CellState& c, std::uint64_t val, MemOrder mo);
  void cell_await_load(CellState& c);
  std::uint64_t plain_read(PlainState& p);
  void plain_write(PlainState& p, std::uint64_t val);
  void mutex_lock(Mutex& m);
  void mutex_unlock(Mutex& m);
  void fence_op(MemOrder mo);
  void log_event(std::string line) { events_.push_back(std::move(line)); }

  /// Branch point shared by scheduling and load-value decisions: replays
  /// the DFS prefix, then extends the stack with choice 0.
  int choose(bool sched, int num, std::vector<int> cands);

 private:
  enum class St { kIdle, kRunning, kAtYield, kFinished };

  struct ThreadState {
    std::thread worker;
    std::binary_semaphore go{0};
    std::function<void()> body;
    St st = St::kIdle;
    OpDesc pending;
    VectorClock clock;
    VectorClock pending_release;  ///< clock at the last release fence
    VectorClock pending_acquire;  ///< release clocks of relaxed-loaded stores
  };

  struct Node {
    bool sched = false;
    int num = 0;
    int chosen = 0;
    std::vector<int> cands;  ///< sched nodes: candidate tids
  };

  void run_one_execution();
  void resume(int tid);
  void unwind();
  void set_violation(Violation::Kind kind, std::string msg);
  bool enabled(int tid);
  void tick(int tid) { ++threads_[tid].clock.v[tid]; }
  [[noreturn]] void die(const char* msg) {
    std::fprintf(stderr, "ix::Explorer internal error: %s\n", msg);
    std::abort();
  }

  void worker_main(int tid);

  Options opts_;
  std::function<void(Env&)> program_;
  std::vector<std::pair<std::string, std::function<bool()>>> invariants_;

  ThreadState threads_[kMaxThreads];
  int nthreads_ = -1;
  std::binary_semaphore sched_sem_{0};
  bool exit_ = false;

  std::vector<Node> stack_;
  std::size_t pos_ = 0;  ///< replay cursor into stack_

  long executions_ = 0;
  bool aborting_ = false;
  std::uint32_t sleep_ = 0;  ///< current sleep set (tid bitmask)
  std::optional<Violation> violation_;
  std::vector<std::string> events_;

  friend class ::bm::ix::Env;
};

// -- exploration driver ------------------------------------------------------

Result Explorer::run() {
  for (;;) {
    run_one_execution();
    ++executions_;
    if (violation_) return {executions_, false, violation_};
    // Backtrack: bump the deepest unexhausted decision, drop everything
    // below it. Empty stack = the whole space has been covered.
    while (!stack_.empty()) {
      Node& b = stack_.back();
      if (b.chosen + 1 < b.num) {
        ++b.chosen;
        break;
      }
      stack_.pop_back();
    }
    if (stack_.empty()) return {executions_, true, std::nullopt};
    if (executions_ >= opts_.max_executions)
      return {executions_, false, std::nullopt};
  }
}

void Explorer::run_one_execution() {
  pos_ = 0;
  aborting_ = false;
  sleep_ = 0;
  events_.clear();

  Env env;
  program_(env);
  if (nthreads_ < 0) {
    nthreads_ = static_cast<int>(env.bodies_.size());
    if (nthreads_ < 1 || nthreads_ > kMaxThreads)
      die("thread count out of range");
    for (int i = 0; i < nthreads_; ++i)
      threads_[i].worker = std::thread([this, i] { worker_main(i); });
  } else if (static_cast<int>(env.bodies_.size()) != nthreads_) {
    die("program registered a different thread count across executions");
  }
  invariants_ = std::move(env.invariants_);

  for (int i = 0; i < nthreads_; ++i) {
    ThreadState& t = threads_[i];
    t.body = std::move(env.bodies_[i]);
    t.st = St::kIdle;
    t.pending = OpDesc{};
    t.clock.clear();
    t.clock.v[i] = 1;
    t.pending_release.clear();
    t.pending_acquire.clear();
  }

  // Run every thread to its first yield point (or completion). No shared
  // op executes here, so the fixed start order costs no coverage.
  for (int i = 0; i < nthreads_; ++i) resume(i);
  if (violation_) {
    unwind();
    return;
  }

  int steps = 0;
  for (;;) {
    std::vector<int> runnable;
    bool any_alive = false;
    for (int i = 0; i < nthreads_; ++i) {
      if (threads_[i].st == St::kFinished) continue;
      any_alive = true;
      if (enabled(i)) runnable.push_back(i);
    }
    if (!any_alive) break;
    if (runnable.empty()) {
      std::string msg = "no runnable thread:";
      for (int i = 0; i < nthreads_; ++i)
        if (threads_[i].st != St::kFinished)
          msg += " T" + std::to_string(i) + " blocked on " +
                 threads_[i].pending.what + ";";
      set_violation(Violation::Kind::kDeadlock, msg);
      unwind();
      return;
    }

    std::vector<int> cands;
    for (int tid : runnable)
      if (!opts_.sleep_sets || !((sleep_ >> tid) & 1u)) cands.push_back(tid);
    if (cands.empty()) {
      // Every runnable thread is asleep: this branch only replays an
      // already-explored trace. Abandon it (no invariant check needed —
      // the equivalent terminal state was checked on the representative).
      unwind();
      return;
    }

    const int k = choose(true, static_cast<int>(cands.size()), cands);
    const int tid = cands[k];
    std::uint32_t branch_sleep = sleep_;
    for (int i = 0; i < k; ++i) branch_sleep |= 1u << cands[i];
    const OpDesc op = threads_[tid].pending;  // executed this step

    resume(tid);
    if (violation_) {
      unwind();
      return;
    }

    // Sleep-set evolution: a sleeping thread wakes when an op dependent
    // with its pending op executes.
    std::uint32_t next_sleep = 0;
    for (int u = 0; u < nthreads_; ++u)
      if (((branch_sleep >> u) & 1u) && threads_[u].st != St::kFinished &&
          independent_ops(threads_[u].pending, op))
        next_sleep |= 1u << u;
    sleep_ = next_sleep;

    if (++steps > opts_.max_steps) {
      set_violation(Violation::Kind::kStepLimit,
                    "execution exceeded max_steps = " +
                        std::to_string(opts_.max_steps) +
                        " (unbounded spin in the model?)");
      unwind();
      return;
    }
  }

  for (const auto& [name, inv] : invariants_) {
    if (!inv()) {
      set_violation(Violation::Kind::kInvariant,
                    "invariant failed: " + name);
      break;
    }
  }
  for (int i = 0; i < nthreads_; ++i) threads_[i].body = nullptr;
  invariants_.clear();
}

void Explorer::resume(int tid) {
  threads_[tid].go.release();
  sched_sem_.acquire();
}

void Explorer::unwind() {
  aborting_ = true;
  for (int i = 0; i < nthreads_; ++i)
    if (threads_[i].st != St::kFinished) resume(i);
  for (int i = 0; i < nthreads_; ++i) threads_[i].body = nullptr;
  invariants_.clear();
}

void Explorer::set_violation(Violation::Kind kind, std::string msg) {
  if (violation_) return;
  violation_ = Violation{kind, std::move(msg), events_};
}

bool Explorer::enabled(int tid) {
  const OpDesc& p = threads_[tid].pending;
  return !p.enabled || p.enabled();
}

int Explorer::choose(bool sched, int num, std::vector<int> cands) {
  if (num <= 1) return 0;  // no branch, no stack entry
  if (pos_ < stack_.size()) {
    Node& nd = stack_[pos_];
    if (nd.sched != sched || nd.num != num)
      die("nondeterministic model: decision replay mismatch");
    ++pos_;
    return nd.chosen;
  }
  stack_.push_back(Node{sched, num, 0, std::move(cands)});
  ++pos_;
  return 0;
}

void Explorer::worker_main(int tid) {
  detail::t_cur = this;
  detail::t_tid = tid;
  ThreadState& t = threads_[tid];
  for (;;) {
    t.go.acquire();
    if (exit_) return;
    try {
      t.body();
    } catch (const AbortExec&) {
    } catch (const std::exception& e) {
      set_violation(Violation::Kind::kCheck,
                    std::string("uncaught exception in model thread: ") +
                        e.what());
    }
    t.st = St::kFinished;
    sched_sem_.release();
  }
}

void Explorer::yield(OpDesc op) {
  ThreadState& t = threads_[detail::t_tid];
  t.pending = std::move(op);
  t.st = St::kAtYield;
  sched_sem_.release();
  t.go.acquire();
  if (aborting_) throw AbortExec{};
  t.st = St::kRunning;
}

void Explorer::fail(Violation::Kind kind, std::string msg) {
  set_violation(kind, std::move(msg));
  throw AbortExec{};
}

// -- op effects (run on the scheduled worker; nothing else executes) ---------

std::uint64_t Explorer::cell_load(CellState& c, MemOrder mo) {
  const int tid = detail::t_tid;
  ThreadState& t = threads_[tid];
  // Coherence floor: a load may not read below the newest store it knows
  // happened-before it, nor below anything this thread read/wrote earlier.
  int lb = c.last_read_[tid];
  for (int i = static_cast<int>(c.stores_.size()) - 1; i > lb; --i) {
    if (c.stores_[i].when.leq(t.clock)) {
      lb = i;
      break;
    }
  }
  const int n = static_cast<int>(c.stores_.size()) - lb;
  // Candidates ordered newest-first so the first execution reads like SC.
  const int k = choose(false, n, {});
  const int idx = static_cast<int>(c.stores_.size()) - 1 - k;
  const StoreRecord& s = c.stores_[idx];
  c.last_read_[tid] = idx;
  if (has_acquire(mo))
    t.clock.join(s.release);
  else
    t.pending_acquire.join(s.release);
  tick(tid);
  log_event("T" + std::to_string(tid) + " " + c.name() + ".load(" +
            memorder_name(mo) + ") = " + u64s(s.value) + " [store#" +
            std::to_string(idx) + "]");
  return s.value;
}

void Explorer::cell_store(CellState& c, std::uint64_t val, MemOrder mo) {
  const int tid = detail::t_tid;
  ThreadState& t = threads_[tid];
  tick(tid);
  StoreRecord s;
  s.value = val;
  s.by_tid = tid;
  s.when = t.clock;
  // Release publishes the thread's clock; a relaxed store publishes at
  // most what a prior release fence snapshotted.
  s.release = has_release(mo) ? t.clock : t.pending_release;
  c.stores_.push_back(s);
  c.last_read_[tid] = static_cast<int>(c.stores_.size()) - 1;
  log_event("T" + std::to_string(tid) + " " + c.name() + ".store(" +
            u64s(val) + ", " + memorder_name(mo) + ")");
}

std::uint64_t Explorer::cell_rmw_read(CellState& c, MemOrder mo) {
  // RMWs always read the latest store in modification order.
  const int tid = detail::t_tid;
  ThreadState& t = threads_[tid];
  const StoreRecord& s = c.stores_.back();
  if (has_acquire(mo))
    t.clock.join(s.release);
  else
    t.pending_acquire.join(s.release);
  c.last_read_[tid] = static_cast<int>(c.stores_.size()) - 1;
  return s.value;
}

void Explorer::cell_rmw_write(CellState& c, std::uint64_t val, MemOrder mo) {
  const int tid = detail::t_tid;
  ThreadState& t = threads_[tid];
  tick(tid);
  StoreRecord s;
  s.value = val;
  s.by_tid = tid;
  s.when = t.clock;
  s.release = has_release(mo) ? t.clock : t.pending_release;
  // RMWs continue the release sequence of the store they replace.
  s.release.join(c.stores_.back().release);
  c.stores_.push_back(s);
  c.last_read_[tid] = static_cast<int>(c.stores_.size()) - 1;
}

void Explorer::cell_await_load(CellState& c) {
  const int tid = detail::t_tid;
  ThreadState& t = threads_[tid];
  const StoreRecord& s = c.stores_.back();
  t.clock.join(s.release);  // await is an acquire read of the latest store
  c.last_read_[tid] = static_cast<int>(c.stores_.size()) - 1;
  tick(tid);
  log_event("T" + std::to_string(tid) + " " + c.name() + ".await -> " +
            u64s(s.value));
}

std::uint64_t Explorer::plain_read(PlainState& p) {
  const int tid = detail::t_tid;
  ThreadState& t = threads_[tid];
  if (!p.race_check_read(t.clock))
    fail(Violation::Kind::kDataRace,
         std::string("data race on ") + p.name() + ": T" +
             std::to_string(tid) + " read vs T" +
             std::to_string(p.last_writer()) + " unsynchronized write");
  tick(tid);
  p.note_read(tid, t.clock);
  log_event("T" + std::to_string(tid) + " " + p.name() + ".read = " +
            u64s(p.peek()));
  return p.peek();
}

void Explorer::plain_write(PlainState& p, std::uint64_t val) {
  const int tid = detail::t_tid;
  ThreadState& t = threads_[tid];
  int other = -1;
  if (!p.race_check_write(t.clock, other))
    fail(Violation::Kind::kDataRace,
         std::string("data race on ") + p.name() + ": T" +
             std::to_string(tid) + " write vs T" + std::to_string(other) +
             " unsynchronized access");
  tick(tid);
  p.note_write(tid, t.clock, val);
  log_event("T" + std::to_string(tid) + " " + p.name() + ".write(" +
            u64s(val) + ")");
}

void Explorer::mutex_lock(Mutex& m) {
  const int tid = detail::t_tid;
  if (m.held_by_ != -1) die("scheduled a lock of a held mutex");
  m.held_by_ = tid;
  threads_[tid].clock.join(m.clock_);
  tick(tid);
  log_event("T" + std::to_string(tid) + " " + m.name_ + ".lock()");
}

void Explorer::mutex_unlock(Mutex& m) {
  const int tid = detail::t_tid;
  if (m.held_by_ != tid)
    fail(Violation::Kind::kCheck,
         std::string("unlock of ") + m.name_ + " not held by T" +
             std::to_string(tid));
  tick(tid);
  m.clock_.join(threads_[tid].clock);
  m.held_by_ = -1;
  log_event("T" + std::to_string(tid) + " " + m.name_ + ".unlock()");
}

void Explorer::fence_op(MemOrder mo) {
  const int tid = detail::t_tid;
  ThreadState& t = threads_[tid];
  if (has_release(mo)) t.pending_release = t.clock;
  if (has_acquire(mo)) {
    t.clock.join(t.pending_acquire);
    t.pending_acquire.clear();
  }
  log_event("T" + std::to_string(tid) + " fence(" + memorder_name(mo) + ")");
}

// -- model-facing wrappers ---------------------------------------------------

namespace {

Explorer& ex_checked() {
  Explorer* ex = detail::cur();
  if (!ex || detail::cur_tid() < 0) {
    std::fprintf(stderr,
                 "ix:: operation outside an explore() worker thread\n");
    std::abort();
  }
  return *ex;
}

OpDesc make_op(OpDesc::Kind kind, const void* obj, bool write_like,
               std::string what, std::function<bool()> enabled = nullptr) {
  OpDesc op;
  op.kind = kind;
  op.obj = obj;
  op.write_like = write_like;
  op.what = std::move(what);
  op.enabled = std::move(enabled);
  return op;
}

}  // namespace

namespace detail {

CellState::CellState(const char* name, std::uint64_t init) : name_(name) {
  StoreRecord s;
  s.value = init;  // initial store: bottom clocks, visible to every thread
  stores_.push_back(s);
  for (auto& r : last_read_) r = 0;
}

std::uint64_t CellState::load(MemOrder mo) {
  Explorer& ex = ex_checked();
  ex.yield(make_op(OpDesc::Kind::kLoad, this, false,
                   std::string(name_) + ".load"));
  return ex.cell_load(*this, mo);
}

void CellState::store(std::uint64_t val, MemOrder mo) {
  Explorer& ex = ex_checked();
  ex.yield(make_op(OpDesc::Kind::kStore, this, true,
                   std::string(name_) + ".store"));
  ex.cell_store(*this, val, mo);
}

std::uint64_t CellState::fetch_add(std::uint64_t d, MemOrder mo) {
  Explorer& ex = ex_checked();
  ex.yield(make_op(OpDesc::Kind::kRmw, this, true,
                   std::string(name_) + ".fetch_add"));
  const std::uint64_t old = ex.cell_rmw_read(*this, mo);
  ex.cell_rmw_write(*this, old + d, mo);
  ex.log_event("T" + std::to_string(cur_tid()) + " " + name_ +
               ".fetch_add(" + u64s(d) + ", " + memorder_name(mo) +
               ") = " + u64s(old));
  return old;
}

std::uint64_t CellState::exchange(std::uint64_t val, MemOrder mo) {
  Explorer& ex = ex_checked();
  ex.yield(make_op(OpDesc::Kind::kRmw, this, true,
                   std::string(name_) + ".exchange"));
  const std::uint64_t old = ex.cell_rmw_read(*this, mo);
  ex.cell_rmw_write(*this, val, mo);
  ex.log_event("T" + std::to_string(cur_tid()) + " " + name_ +
               ".exchange(" + u64s(val) + ", " + memorder_name(mo) +
               ") = " + u64s(old));
  return old;
}

bool CellState::compare_exchange(std::uint64_t& expected,
                                 std::uint64_t desired, MemOrder mo) {
  Explorer& ex = ex_checked();
  ex.yield(make_op(OpDesc::Kind::kRmw, this, true,
                   std::string(name_) + ".cas"));
  const std::uint64_t old = ex.cell_rmw_read(*this, mo);
  const bool ok = old == expected;
  if (ok) ex.cell_rmw_write(*this, desired, mo);
  ex.log_event("T" + std::to_string(cur_tid()) + " " + name_ + ".cas(" +
               u64s(expected) + " -> " + u64s(desired) + ", " +
               memorder_name(mo) + ") = " + (ok ? "ok" : "fail"));
  expected = old;
  return ok;
}

void CellState::await(std::function<bool(std::uint64_t)> pred,
                      const char* what) {
  Explorer& ex = ex_checked();
  ex.yield(make_op(OpDesc::Kind::kAwait, this, false,
                   std::string(name_) + "." + what,
                   [this, pred] { return pred(stores_.back().value); }));
  ex.cell_await_load(*this);
}

std::uint64_t CellState::peek() const { return stores_.back().value; }

PlainState::PlainState(const char* name, std::uint64_t init)
    : name_(name), value_(init) {}

std::uint64_t PlainState::read() {
  Explorer& ex = ex_checked();
  ex.yield(make_op(OpDesc::Kind::kPlainRead, this, false,
                   std::string(name_) + ".read"));
  return ex.plain_read(*this);
}

void PlainState::write(std::uint64_t val) {
  Explorer& ex = ex_checked();
  ex.yield(make_op(OpDesc::Kind::kPlainWrite, this, true,
                   std::string(name_) + ".write"));
  ex.plain_write(*this, val);
}

}  // namespace detail

void Mutex::lock() {
  Explorer& ex = ex_checked();
  ex.yield(make_op(OpDesc::Kind::kLock, this, true,
                   std::string(name_) + ".lock",
                   [this] { return held_by_ == -1; }));
  ex.mutex_lock(*this);
}

void Mutex::unlock() {
  Explorer& ex = ex_checked();
  ex.yield(make_op(OpDesc::Kind::kUnlock, this, true,
                   std::string(name_) + ".unlock"));
  ex.mutex_unlock(*this);
}

void fence(MemOrder mo) { ex_checked().fence_op(mo); }

void check(bool cond, const std::string& msg) {
  if (cond) return;
  ex_checked().fail(Violation::Kind::kCheck, "check failed: " + msg);
}

void Env::thread(std::function<void()> body) {
  bodies_.push_back(std::move(body));
}

void Env::invariant(std::string name, std::function<bool()> inv) {
  invariants_.emplace_back(std::move(name), std::move(inv));
}

Result explore(const Options& opts,
               const std::function<void(Env&)>& program) {
  Explorer ex(opts, program);
  return ex.run();
}

}  // namespace bm::ix
