#include "support/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace bm {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  BM_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  BM_REQUIRE(cells.size() == header_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return os.str();
}

void TextTable::render(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << " |\n";
  };
  auto rule = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
    }
    os << "-|\n";
  };
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

struct CsvWriter::Impl {
  std::ofstream out;
};

CsvWriter::CsvWriter(const std::string& path) : impl_(new Impl) {
  impl_->out.open(path);
  if (!impl_->out) {
    delete impl_;
    throw Error("cannot open CSV file: " + path);
  }
}

CsvWriter::~CsvWriter() { delete impl_; }

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  bool first = true;
  for (const auto& cell : cells) {
    if (!first) impl_->out << ',';
    first = false;
    // RFC 4180: quote fields containing the separator, a quote, or either
    // line-break character (a bare CR also splits rows in most readers).
    const bool needs_quote =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quote) {
      impl_->out << cell;
    } else {
      impl_->out << '"';
      for (char ch : cell) {
        if (ch == '"') impl_->out << '"';
        impl_->out << ch;
      }
      impl_->out << '"';
    }
  }
  impl_->out << '\n';
}

}  // namespace bm
