#include "support/cli.hpp"

#include <cstdlib>

#include "support/assert.hpp"
#include "support/thread_pool.hpp"

namespace bm {

CliFlags::CliFlags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

bool CliFlags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string CliFlags::get(const std::string& name,
                          const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t CliFlags::get_int(const std::string& name,
                               std::int64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  BM_REQUIRE(end && *end == '\0', "flag --" + name + " is not an integer");
  return v;
}

double CliFlags::get_double(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  BM_REQUIRE(end && *end == '\0', "flag --" + name + " is not a number");
  return v;
}

bool CliFlags::get_bool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw Error("flag --" + name + " is not a boolean: " + v);
}

std::size_t CliFlags::get_jobs(std::size_t def) const {
  if (!has("jobs")) return def;
  if (get("jobs", "") == "auto") return ThreadPool::default_jobs();
  const std::int64_t v = get_int("jobs", 1);
  BM_REQUIRE(v >= 0, "flag --jobs must be >= 0");
  return v == 0 ? ThreadPool::default_jobs() : static_cast<std::size_t>(v);
}

}  // namespace bm
