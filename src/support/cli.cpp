#include "support/cli.hpp"

#include <cstdlib>

#include "support/assert.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace bm {
namespace {

// A token is a usable flag value unless it is itself a flag. "--x" is a
// flag; "-3" or "-0.5" is a negative number and therefore a value. This is
// the fix for the latent bug where a negative value after a flag could be
// mistaken for the start of the next flag, turning the previous flag into a
// bare bool.
bool looks_like_flag(const std::string& tok) {
  if (tok.rfind("--", 0) == 0) return true;
  if (tok.size() < 2 || tok[0] != '-') return false;
  char* end = nullptr;
  std::strtod(tok.c_str(), &end);
  return end == nullptr || *end != '\0';  // "-v" is a flag, "-3" is not
}

bool parses_as_int(const std::string& v) {
  if (v.empty()) return false;
  char* end = nullptr;
  (void)std::strtoll(v.c_str(), &end, 10);
  return end && *end == '\0';
}

bool parses_as_double(const std::string& v) {
  if (v.empty()) return false;
  char* end = nullptr;
  (void)std::strtod(v.c_str(), &end);
  return end && *end == '\0';
}

bool parses_as_bool(const std::string& v) {
  return v == "true" || v == "1" || v == "yes" || v == "on" || v == "false" ||
         v == "0" || v == "no" || v == "off";
}

}  // namespace

FlagSpec int_flag(const std::string& name, std::int64_t def,
                  const std::string& help) {
  return {name, FlagType::kInt, std::to_string(def), help};
}

FlagSpec double_flag(const std::string& name, double def,
                     const std::string& help) {
  return {name, FlagType::kDouble, TextTable::num(def, 3), help};
}

FlagSpec bool_flag(const std::string& name, bool def,
                   const std::string& help) {
  return {name, FlagType::kBool, def ? "true" : "false", help};
}

FlagSpec string_flag(const std::string& name, const std::string& def,
                     const std::string& help) {
  return {name, FlagType::kString, def, help};
}

std::string_view to_string(FlagType t) {
  switch (t) {
    case FlagType::kInt: return "int";
    case FlagType::kDouble: return "float";
    case FlagType::kBool: return "bool";
    case FlagType::kString: return "string";
  }
  return "?";
}

CliFlags::CliFlags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

CliFlags::CliFlags(const std::vector<std::string>& args) {
  std::vector<const char*> argv;
  argv.push_back("prog");
  for (const std::string& a : args) argv.push_back(a.c_str());
  *this = CliFlags(static_cast<int>(argv.size()), argv.data());
}

void CliFlags::validate(const std::vector<FlagSpec>& schema,
                        const std::vector<FlagSpec>& extra) const {
  auto find_spec = [&](const std::string& name) -> const FlagSpec* {
    for (const FlagSpec& s : schema)
      if (s.name == name) return &s;
    for (const FlagSpec& s : extra)
      if (s.name == name) return &s;
    return nullptr;
  };
  for (const auto& [name, value] : values_) {
    const FlagSpec* spec = find_spec(name);
    if (spec == nullptr) {
      std::string known;
      for (const FlagSpec& s : schema)
        known += (known.empty() ? "--" : ", --") + s.name;
      throw Error("unknown flag --" + name + " (accepted: " + known + ")");
    }
    switch (spec->type) {
      case FlagType::kInt:
        if (!parses_as_int(value))
          throw Error("flag --" + name + " expects an integer, got '" +
                      value + "'");
        break;
      case FlagType::kDouble:
        if (!parses_as_double(value))
          throw Error("flag --" + name + " expects a number, got '" + value +
                      "'");
        break;
      case FlagType::kBool:
        if (!parses_as_bool(value))
          throw Error("flag --" + name + " expects a boolean, got '" + value +
                      "'");
        break;
      case FlagType::kString:
        break;
    }
  }
}

bool CliFlags::has(const std::string& name) const {
  return values_.contains(name);
}

std::string CliFlags::get(const std::string& name,
                          const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t CliFlags::get_int(const std::string& name,
                               std::int64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  BM_REQUIRE(end && *end == '\0', "flag --" + name + " is not an integer");
  return v;
}

double CliFlags::get_double(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  BM_REQUIRE(end && *end == '\0', "flag --" + name + " is not a number");
  return v;
}

bool CliFlags::get_bool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw Error("flag --" + name + " is not a boolean: " + v);
}

std::size_t CliFlags::get_jobs(std::size_t def) const {
  if (!has("jobs")) return def;
  if (get("jobs", "") == "auto") return ThreadPool::default_jobs();
  const std::int64_t v = get_int("jobs", 1);
  BM_REQUIRE(v >= 0, "flag --jobs must be >= 0");
  return v == 0 ? ThreadPool::default_jobs() : static_cast<std::size_t>(v);
}

}  // namespace bm
