// A small fixed-size worker pool for coarse-grain parallel evaluation (the
// experiment harness fans independent seeded benchmarks across workers).
// Tasks are plain std::function<void()>; the pool makes no fairness or
// ordering promises, so callers that need deterministic output must collect
// per-task results and merge them in a deterministic order themselves.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bm {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1). The pool is fixed-size: no
  /// growth, no work stealing — predictable for benchmarking.
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue (pending tasks still run), then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. Tasks may be submitted from worker threads. A task
  /// that throws never terminates the worker: the first uncaught exception
  /// (by completion time) is captured and rethrown by the next wait_idle().
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished running, then rethrows
  /// the first exception any task leaked since the last wait_idle (clearing
  /// it, so the pool stays usable afterwards). Exceptions still pending at
  /// destruction are dropped.
  void wait_idle();

  /// Runs fn(0), ..., fn(n-1) across the workers and blocks until all are
  /// done. Indices are claimed from a shared atomic counter, so completion
  /// order is nondeterministic but every index runs exactly once. If any
  /// invocation throws, the first exception (by completion time) is
  /// rethrown on the caller after all indices finish or are abandoned.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Worker count to use for "--jobs 0 / auto": the hardware concurrency,
  /// or 1 when the runtime cannot report it.
  static std::size_t default_jobs();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  ///< queued + currently running tasks
  std::exception_ptr pending_error_;  ///< first task-leaked exception
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Convenience: run fn over [0, n) with `jobs` workers. jobs <= 1 (or n <= 1)
/// executes inline on the caller with zero threading overhead — the common
/// serial path stays allocation- and lock-free.
void parallel_for_jobs(std::size_t jobs, std::size_t n,
                       const std::function<void(std::size_t)>& fn);

}  // namespace bm
