// A small fixed-size worker pool for coarse-grain parallel evaluation (the
// experiment harness fans independent seeded benchmarks across workers, and
// the scheduling service batches client requests onto one shared pool).
// Tasks are plain std::function<void()>; the pool makes no fairness or
// ordering promises, so callers that need deterministic output must collect
// per-task results and merge them in a deterministic order themselves.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "support/ordered_mutex.hpp"

namespace bm {

/// Shared cooperative-cancellation handle. Copies refer to the same state;
/// cancel() is sticky and thread-safe. A task submitted with a token is
/// *skipped* (dropped unrun, its closure destroyed) if the token is
/// cancelled by the time a worker would dequeue it; a task already running
/// is never interrupted — long-running task bodies that want mid-flight
/// cancellation poll cancelled() themselves.
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() const { state_->store(true, std::memory_order_release); }
  bool cancelled() const { return state_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1). The pool is fixed-size: no
  /// growth, no work stealing — predictable for benchmarking.
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue — every task still pending runs to completion (it is
  /// never abandoned; cancelled-token tasks are skipped as usual) — then
  /// joins all workers. tests/thread_pool_test.cpp pins this contract.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. Tasks may be submitted from worker threads. A task
  /// that throws never terminates the worker: the first uncaught exception
  /// (by completion time) is captured and rethrown by the next wait_idle().
  void submit(std::function<void()> task);

  /// Enqueues a task bound to a cancellation token: if `token.cancelled()`
  /// when a worker dequeues it, the task body never runs (its closure is
  /// destroyed, releasing captured resources) and the skip is counted by
  /// cancelled_skips(). wait_idle() accounting treats a skip as completion.
  void submit(CancelToken token, std::function<void()> task);

  /// Blocks until every submitted task has finished running (or been
  /// skipped), then rethrows the first exception any task leaked since the
  /// last wait_idle (clearing it, so the pool stays usable afterwards).
  /// Exceptions still pending at destruction are dropped.
  void wait_idle();

  /// Queued-but-not-yet-running tasks (snapshot; callers wanting admission
  /// control should keep their own atomic pending count).
  std::size_t pending() const;

  /// Tasks dropped unrun because their token was cancelled.
  std::size_t cancelled_skips() const;

  /// Runs fn(0), ..., fn(n-1) across the workers and blocks until all are
  /// done. Indices are claimed from a shared atomic counter, so completion
  /// order is nondeterministic but every index runs exactly once. If any
  /// invocation throws, the first exception (by completion time) is
  /// rethrown on the caller after all indices finish or are abandoned.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Worker count to use for "--jobs 0 / auto": the hardware concurrency,
  /// or 1 when the runtime cannot report it.
  static std::size_t default_jobs();

 private:
  struct Task {
    std::function<void()> fn;
    CancelToken token;
    bool has_token = false;
  };

  void worker_loop();
  void enqueue(Task t);

  /// kThreadPool is the deepest hierarchy level: submit() may run under
  /// any serving-stack lock, and workers dequeue holding nothing else.
  /// condition_variable_any waits release/reacquire through the checked
  /// lock methods, keeping the held-lock stack exact across waits.
  mutable OrderedMutex mu_{LockLevel::kThreadPool, "ThreadPool.mu"};
  std::condition_variable_any work_ready_;
  std::condition_variable_any idle_;
  std::deque<Task> queue_;
  std::size_t in_flight_ = 0;  ///< queued + currently running tasks
  std::size_t cancelled_skips_ = 0;
  std::exception_ptr pending_error_;  ///< first task-leaked exception
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Convenience: run fn over [0, n) with `jobs` workers. jobs <= 1 (or n <= 1)
/// executes inline on the caller with zero threading overhead — the common
/// serial path stays allocation- and lock-free.
void parallel_for_jobs(std::size_t jobs, std::size_t n,
                       const std::function<void(std::size_t)>& fn);

}  // namespace bm
