// Pooled scratch arenas with session-scoped installation.
//
// The scheduler, the barrier-insertion analyses, and the SBM/DBM simulators
// run once per seed inside tight experiment loops; their transient buffers
// (ready lists, path stacks, arrival vectors, Kahn indegrees) used to be
// allocated per call. A ScratchVec<T> checks a vector out of the *active
// arena's* free list on construction and returns it — capacity intact — on
// destruction, so steady-state seeds perform no heap allocation for scratch
// at all.
//
// Arenas: every thread has an implicit default ScratchArena (created
// lazily, lives for the thread), which preserves the historical
// "thread-local pool" behavior for batch drivers like the experiment
// harness. Long-lived services instead give each SchedulerSession its own
// ScratchArena and install it for the duration of a request with
// ScratchArenaScope, so concurrent or interleaved sessions never share (or
// fight over) scratch capacity and a session's memory footprint is owned,
// bounded, and released by that session. Installation is a thread-local
// pointer swap; a ScratchVec must not outlive the scope it was checked out
// under (all users are function-scoped).
//
// Accounting: two counters observe the pools (through obs/metrics):
//   mem.scratch.miss — a checkout found the free list empty (new vector)
//   mem.scratch.grow — a buffer's capacity grew while checked out
// Both are zero in steady state; tests/scratch_arena_test.cpp asserts it.
// The `mem.` prefix marks machine-/thread-dependent metrics: experiment
// manifests exclude them (a --jobs 8 run warms eight pools, a --jobs 1 run
// one, and manifests must stay byte-identical across worker counts).
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <utility>
#include <vector>

#ifdef BM_SCRATCH_DEBUG
#include <cstdio>
#include <typeinfo>
#endif

namespace bm {

namespace scratch_detail {

/// Counter bumps live in obs/scratch_counters.cpp so this header stays
/// obs-free.
void note_miss();
void note_grow();

/// Dense per-element-type index, assigned on first use (scratch.cpp).
std::size_t next_scratch_type_id();

template <typename T>
std::size_t scratch_type_id() {
  static const std::size_t id = next_scratch_type_id();
  return id;
}

}  // namespace scratch_detail

/// A set of per-type free lists of pooled vectors. Not thread-safe: an
/// arena may only be active on one thread at a time (ScratchArenaScope
/// installs it; SchedulerSession enforces single-threaded use).
class ScratchArena {
 public:
  ScratchArena() = default;
  ~ScratchArena() {
    for (Slot& s : slots_)
      if (s.pools != nullptr) s.destroy(s.pools);
  }

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// The free list of pooled vectors for element type T.
  template <typename T>
  std::vector<std::vector<T>>& pool() {
    using Pool = std::vector<std::vector<T>>;
    const std::size_t id = scratch_detail::scratch_type_id<T>();
    if (id >= slots_.size()) slots_.resize(id + 1);
    Slot& s = slots_[id];
    if (s.pools == nullptr) {
      s.pools = new Pool();
      s.destroy = [](void* p) { delete static_cast<Pool*>(p); };
    }
    return *static_cast<Pool*>(s.pools);
  }

 private:
  struct Slot {
    void* pools = nullptr;
    void (*destroy)(void*) = nullptr;
  };
  std::vector<Slot> slots_;
};

namespace scratch_detail {

/// The thread's active arena (never null): an explicitly installed one, or
/// the thread's lazily created default arena.
ScratchArena& active_arena();
/// Swaps the installed arena; returns the previous installation (nullptr =
/// the thread default was active). Used by ScratchArenaScope only.
ScratchArena* exchange_arena(ScratchArena* next);

}  // namespace scratch_detail

/// RAII installation of an arena as the calling thread's active arena.
/// Every ScratchVec constructed inside the scope checks out of (and returns
/// to) this arena. Scopes nest; each restores its predecessor.
class ScratchArenaScope {
 public:
  explicit ScratchArenaScope(ScratchArena& arena)
      : prev_(scratch_detail::exchange_arena(&arena)) {}
  ~ScratchArenaScope() { scratch_detail::exchange_arena(prev_); }

  ScratchArenaScope(const ScratchArenaScope&) = delete;
  ScratchArenaScope& operator=(const ScratchArenaScope&) = delete;

 private:
  ScratchArena* prev_;
};

/// RAII handle on a pooled std::vector<T>. Checked out empty (capacity
/// retained from previous uses of the active arena); returned on
/// destruction. Not copyable or movable — scope it where the buffer is
/// needed, and never across a ScratchArenaScope boundary.
template <typename T>
class ScratchVec {
 public:
  ScratchVec() {
    auto& pool = scratch_detail::active_arena().pool<T>();
    if (pool.empty()) {
      scratch_detail::note_miss();
    } else {
      v_ = std::move(pool.back());
      pool.pop_back();
      v_.clear();
    }
    checkout_capacity_ = v_.capacity();
  }

  ~ScratchVec() {
    if (v_.capacity() > checkout_capacity_) {
#ifdef BM_SCRATCH_DEBUG
      std::fprintf(stderr, "scratch grow %s: %zu -> %zu\n", typeid(T).name(),
                   checkout_capacity_, v_.capacity());
#endif
      scratch_detail::note_grow();
    }
    // Quantize the retained capacity to a power of two (min 64): demand
    // sizes jitter by a few entries from seed to seed (barrier counts,
    // ready-list peaks), and exact-fit capacities would regrow some pooled
    // buffer on nearly every checkout. The one-time round-up realloc here
    // buys steady-state checkins that never touch the allocator.
    const std::size_t want =
        std::bit_ceil(std::max<std::size_t>(v_.capacity(), 64));
    if (v_.capacity() < want) {
      v_.clear();
      v_.reserve(want);
    }
    scratch_detail::active_arena().pool<T>().push_back(std::move(v_));
  }

  ScratchVec(const ScratchVec&) = delete;
  ScratchVec& operator=(const ScratchVec&) = delete;

  std::vector<T>& operator*() { return v_; }
  std::vector<T>* operator->() { return &v_; }
  const std::vector<T>& operator*() const { return v_; }
  const std::vector<T>* operator->() const { return &v_; }

 private:
  std::vector<T> v_;
  std::size_t checkout_capacity_ = 0;
};

}  // namespace bm
