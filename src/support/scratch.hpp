// Pooled per-thread scratch arenas.
//
// The scheduler, the barrier-insertion analyses, and the SBM/DBM simulators
// run once per seed inside tight experiment loops; their transient buffers
// (ready lists, path stacks, arrival vectors, Kahn indegrees) used to be
// allocated per call. A ScratchVec<T> checks a vector out of a thread-local
// free list on construction and returns it — capacity intact — on
// destruction, so steady-state seeds perform no heap allocation for scratch
// at all.
//
// Accounting: two counters observe the pool (through obs/metrics):
//   mem.scratch.miss — a checkout found the free list empty (new vector)
//   mem.scratch.grow — a buffer's capacity grew while checked out
// Both are zero in steady state; tests/scratch_arena_test.cpp asserts it.
// The `mem.` prefix marks machine-/thread-dependent metrics: experiment
// manifests exclude them (a --jobs 8 run warms eight pools, a --jobs 1 run
// one, and manifests must stay byte-identical across worker counts).
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <utility>
#include <vector>

#ifdef BM_SCRATCH_DEBUG
#include <cstdio>
#include <typeinfo>
#endif

namespace bm {

namespace scratch_detail {

/// Counter bumps live in scratch.cpp so this header stays obs-free.
void note_miss();
void note_grow();

template <typename T>
std::vector<std::vector<T>>& free_list() {
  thread_local std::vector<std::vector<T>> list;
  return list;
}

}  // namespace scratch_detail

/// RAII handle on a pooled std::vector<T>. Checked out empty (capacity
/// retained from previous uses on this thread); returned on destruction.
/// Not copyable or movable — scope it where the buffer is needed.
template <typename T>
class ScratchVec {
 public:
  ScratchVec() {
    auto& pool = scratch_detail::free_list<T>();
    if (pool.empty()) {
      scratch_detail::note_miss();
    } else {
      v_ = std::move(pool.back());
      pool.pop_back();
      v_.clear();
    }
    checkout_capacity_ = v_.capacity();
  }

  ~ScratchVec() {
    if (v_.capacity() > checkout_capacity_) {
#ifdef BM_SCRATCH_DEBUG
      std::fprintf(stderr, "scratch grow %s: %zu -> %zu\n", typeid(T).name(),
                   checkout_capacity_, v_.capacity());
#endif
      scratch_detail::note_grow();
    }
    // Quantize the retained capacity to a power of two (min 64): demand
    // sizes jitter by a few entries from seed to seed (barrier counts,
    // ready-list peaks), and exact-fit capacities would regrow some pooled
    // buffer on nearly every checkout. The one-time round-up realloc here
    // buys steady-state checkins that never touch the allocator.
    const std::size_t want =
        std::bit_ceil(std::max<std::size_t>(v_.capacity(), 64));
    if (v_.capacity() < want) {
      v_.clear();
      v_.reserve(want);
    }
    scratch_detail::free_list<T>().push_back(std::move(v_));
  }

  ScratchVec(const ScratchVec&) = delete;
  ScratchVec& operator=(const ScratchVec&) = delete;

  std::vector<T>& operator*() { return v_; }
  std::vector<T>* operator->() { return &v_; }
  const std::vector<T>& operator*() const { return v_; }
  const std::vector<T>* operator->() const { return &v_; }

 private:
  std::vector<T> v_;
  std::size_t checkout_capacity_ = 0;
};

}  // namespace bm
