#include "support/json.hpp"

#include <cctype>
#include <cstdlib>

#include "support/assert.hpp"

namespace bm::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw Error("json: " + why + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void literal(std::string_view word) {
    if (text_.compare(pos_, word.size(), word) != 0) fail("invalid literal");
    pos_ += word.size();
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': {
        literal("true");
        Value v;
        v.kind = Value::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        literal("false");
        Value v;
        v.kind = Value::Kind::kBool;
        return v;
      }
      case 'n': literal("null"); return {};
      default: return number();
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      Value key = string_value();
      skip_ws();
      expect(':');
      v.members[key.string] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Value string_value() {
    expect('"');
    Value v;
    v.kind = Value::Kind::kString;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.string += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': v.string += '"'; break;
        case '\\': v.string += '\\'; break;
        case '/': v.string += '/'; break;
        case 'b': v.string += '\b'; break;
        case 'f': v.string += '\f'; break;
        case 'n': v.string += '\n'; break;
        case 'r': v.string += '\r'; break;
        case 't': v.string += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            if (!std::isxdigit(static_cast<unsigned char>(h)))
              fail("invalid \\u escape");
            code = code * 16 +
                   static_cast<unsigned>(
                       h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
          }
          pos_ += 4;
          // UTF-8 encode the BMP code point (surrogate pairs decode as two
          // replacement sequences — nothing in this repo emits them).
          if (code < 0x80) {
            v.string += static_cast<char>(code);
          } else if (code < 0x800) {
            v.string += static_cast<char>(0xC0 | (code >> 6));
            v.string += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            v.string += static_cast<char>(0xE0 | (code >> 12));
            v.string += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            v.string += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("invalid number");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      digits();
    }
    Value v;
    v.kind = Value::Kind::kNumber;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = members.find(std::string(key));
  return it == members.end() ? nullptr : &it->second;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace bm::json
