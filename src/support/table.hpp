// Plain-text table and CSV writers used by the bench binaries to print
// paper-style rows and dump machine-readable series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bm {

/// Column-aligned ASCII table. Collect rows, then render once.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);
  static std::string pct(double fraction, int precision = 1);

  void render(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Minimal CSV writer (quotes fields containing separators/quotes).
class CsvWriter {
 public:
  /// Opens `path` for writing; throws bm::Error on failure.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void write_row(const std::vector<std::string>& cells);

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace bm
