// Explicit SIMD helpers for the seed-major batch loops (sim/batch_sim.cpp).
//
// The batched simulator keeps every per-seed quantity in contiguous
// seed-major rows of W lanes, so its inner loops are textbook
// vectorization candidates. GCC/Clang auto-vectorize the additive loops,
// but the 64-bit max/clamp patterns (barrier arrival folds, fire-time
// clamps) often fall back to scalar cmov chains because x86 lacks a packed
// 64-bit max before AVX-512. The kernels here use the GNU vector extension
// (compiled to the best available ISA, splitting wide vectors on older
// targets) with a scalar tail/fallback, so the hot loops stay branch-free
// without pinning the build to a particular -march.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bm::simd {

#if defined(__GNUC__) || defined(__clang__)
#define BM_SIMD_VECTOR_EXT 1
/// Four 64-bit lanes per step: 256 bits, the sweet spot for both AVX2 and
/// paired 128-bit ops on plain x86-64 / NEON.
using I64x4 __attribute__((vector_size(32))) = std::int64_t;
inline constexpr std::size_t kStep = 4;
#else
#define BM_SIMD_VECTOR_EXT 0
inline constexpr std::size_t kStep = 1;
#endif

/// out[w] = max(a[w], b[w]) for w in [0, n).
inline void max_into(std::int64_t* __restrict__ out,
                     const std::int64_t* __restrict__ a,
                     const std::int64_t* __restrict__ b, std::size_t n) {
  std::size_t w = 0;
#if BM_SIMD_VECTOR_EXT
  for (; w + kStep <= n; w += kStep) {
    I64x4 va, vb;
    __builtin_memcpy(&va, a + w, sizeof(va));
    __builtin_memcpy(&vb, b + w, sizeof(vb));
    const I64x4 vo = va > vb ? va : vb;  // elementwise select
    __builtin_memcpy(out + w, &vo, sizeof(vo));
  }
#endif
  for (; w < n; ++w) out[w] = a[w] > b[w] ? a[w] : b[w];
}

/// acc[w] = max(acc[w], x[w]) for w in [0, n).
inline void max_accumulate(std::int64_t* __restrict__ acc,
                           const std::int64_t* __restrict__ x, std::size_t n) {
  std::size_t w = 0;
#if BM_SIMD_VECTOR_EXT
  for (; w + kStep <= n; w += kStep) {
    I64x4 va, vx;
    __builtin_memcpy(&va, acc + w, sizeof(va));
    __builtin_memcpy(&vx, x + w, sizeof(vx));
    const I64x4 vo = va > vx ? va : vx;
    __builtin_memcpy(acc + w, &vo, sizeof(vo));
  }
#endif
  for (; w < n; ++w)
    if (x[w] > acc[w]) acc[w] = x[w];
}

/// Instruction step: start[w] = t[w]; t[w] += d[w]; finish[w] = t[w].
/// One fused pass keeps t in registers across the three writes.
inline void step_lanes(std::int64_t* __restrict__ t,
                       const std::int64_t* __restrict__ d,
                       std::int64_t* __restrict__ start,
                       std::int64_t* __restrict__ finish, std::size_t n) {
  std::size_t w = 0;
#if BM_SIMD_VECTOR_EXT
  for (; w + kStep <= n; w += kStep) {
    I64x4 vt, vd;
    __builtin_memcpy(&vt, t + w, sizeof(vt));
    __builtin_memcpy(&vd, d + w, sizeof(vd));
    __builtin_memcpy(start + w, &vt, sizeof(vt));
    vt += vd;
    __builtin_memcpy(t + w, &vt, sizeof(vt));
    __builtin_memcpy(finish + w, &vt, sizeof(vt));
  }
#endif
  for (; w < n; ++w) {
    start[w] = t[w];
    t[w] += d[w];
    finish[w] = t[w];
  }
}

/// fire[w] = max(last[w], arrival[w]) + latency; returns the summed FIFO
/// delay sum(max(0, last[w] - arrival[w])) for the SBM delay counter.
inline std::int64_t fire_lanes(std::int64_t* __restrict__ fire,
                               const std::int64_t* __restrict__ last,
                               const std::int64_t* __restrict__ arrival,
                               std::int64_t latency, std::size_t n) {
  std::int64_t delay = 0;
  for (std::size_t w = 0; w < n; ++w) {
    const std::int64_t lo = last[w] > arrival[w] ? last[w] : arrival[w];
    delay += lo - arrival[w];
    fire[w] = lo + latency;
  }
  return delay;
}

/// acc[w] += a[w] - b[w] (stall accumulation: fire minus arrival).
inline void add_diff(std::int64_t* __restrict__ acc,
                     const std::int64_t* __restrict__ a,
                     const std::int64_t* __restrict__ b, std::size_t n) {
  for (std::size_t w = 0; w < n; ++w) acc[w] += a[w] - b[w];
}

}  // namespace bm::simd
