// Error handling primitives for the barrier-mimd library.
//
// BM_REQUIRE is used for precondition violations on public API boundaries
// (throws bm::Error so callers and tests can observe it); BM_ASSERT_INTERNAL
// is for internal invariants that indicate a library bug.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace bm {

/// Exception thrown on violated preconditions and invariants.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise(const char* kind, const char* expr,
                               const char* file, int line,
                               const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace bm

#define BM_REQUIRE(cond, msg)                                               \
  do {                                                                      \
    if (!(cond))                                                            \
      ::bm::detail::raise("precondition", #cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#define BM_ASSERT_INTERNAL(cond, msg)                                     \
  do {                                                                    \
    if (!(cond))                                                          \
      ::bm::detail::raise("invariant", #cond, __FILE__, __LINE__, (msg)); \
  } while (0)
