#include "support/thread_pool.hpp"

#include <atomic>
#include <utility>

#include "support/assert.hpp"

namespace bm {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    OrderedLock lock(mu_);
    stopping_ = true;
  }
  // Workers drain the queue before exiting (worker_loop only returns on an
  // *empty* queue under stopping_), so destruction never abandons a task.
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::enqueue(Task t) {
  {
    OrderedLock lock(mu_);
    BM_REQUIRE(!stopping_, "pool is shutting down");
    queue_.push_back(std::move(t));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::submit(std::function<void()> task) {
  BM_REQUIRE(task != nullptr, "cannot submit an empty task");
  enqueue(Task{std::move(task), CancelToken{}, false});
}

void ThreadPool::submit(CancelToken token, std::function<void()> task) {
  BM_REQUIRE(task != nullptr, "cannot submit an empty task");
  enqueue(Task{std::move(task), std::move(token), true});
}

void ThreadPool::wait_idle() {
  OrderedLock lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (pending_error_) {
    std::exception_ptr err = std::exchange(pending_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

std::size_t ThreadPool::pending() const {
  OrderedLock lock(mu_);
  return queue_.size();
}

std::size_t ThreadPool::cancelled_skips() const {
  OrderedLock lock(mu_);
  return cancelled_skips_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    bool skip = false;
    {
      OrderedLock lock(mu_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      if (task.has_token && task.token.cancelled()) {
        skip = true;
        ++cancelled_skips_;
      }
    }
    // A throwing task must not take the worker down (std::terminate) or
    // leak its in_flight_ tick (wait_idle would deadlock). Capture the
    // first exception; wait_idle rethrows it on the caller. A skipped task
    // destroys its closure outside the lock (captured resources may have
    // nontrivial destructors) and counts as completed.
    std::exception_ptr err;
    if (!skip) {
      try {
        task.fn();
      } catch (...) {
        err = std::current_exception();
      }
    }
    task.fn = nullptr;  // release closure state before signalling idle
    {
      OrderedLock lock(mu_);
      if (err && !pending_error_) pending_error_ = err;
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto first_error = std::make_shared<std::atomic<bool>>(false);
  auto error = std::make_shared<std::exception_ptr>();
  auto error_mu = std::make_shared<std::mutex>();

  // One claiming task per worker; each drains indices until exhausted.
  const std::size_t tasks = std::min(size(), n);
  for (std::size_t t = 0; t < tasks; ++t) {
    submit([next, first_error, error, error_mu, n, &fn] {
      for (;;) {
        const std::size_t i = next->fetch_add(1);
        if (i >= n) return;
        if (first_error->load()) return;  // abandon remaining indices
        try {
          fn(i);
        } catch (...) {
          std::unique_lock<std::mutex> lock(*error_mu);
          if (!first_error->exchange(true)) *error = std::current_exception();
        }
      }
    });
  }
  wait_idle();
  if (first_error->load()) std::rethrow_exception(*error);
}

std::size_t ThreadPool::default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void parallel_for_jobs(std::size_t jobs, std::size_t n,
                       const std::function<void(std::size_t)>& fn) {
  if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(jobs, n));
  pool.parallel_for(n, fn);
}

}  // namespace bm
