#include "support/scratch.hpp"

#include <atomic>

namespace bm::scratch_detail {

std::size_t next_scratch_type_id() {
  static std::atomic<std::size_t> next{0};
  // mo: unique-id allocation; only atomicity of the increment matters.
  return next.fetch_add(1, std::memory_order_relaxed);
}

namespace {

/// The thread's fallback arena: preserves the historical behavior (one
/// warm pool per thread, living for the thread) for code that never
/// installs a session arena — the experiment harness and all tests.
ScratchArena& thread_default_arena() {
  thread_local ScratchArena arena;
  return arena;
}

thread_local ScratchArena* t_installed = nullptr;

}  // namespace

ScratchArena& active_arena() {
  ScratchArena* a = t_installed;
  return a != nullptr ? *a : thread_default_arena();
}

ScratchArena* exchange_arena(ScratchArena* next) {
  ScratchArena* prev = t_installed;
  t_installed = next;
  return prev;
}

}  // namespace bm::scratch_detail
