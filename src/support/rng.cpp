#include "support/rng.hpp"

#include <cmath>

namespace bm {

std::uint64_t split_mix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = split_mix64(sm);
  // Guard against the all-zero state, which xoshiro cannot escape.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  BM_REQUIRE(lo <= hi, "uniform() requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  // Debiased modulo (Lemire-style rejection).
  const std::uint64_t limit = ~0ull - (~0ull % span + 1) % span;
  std::uint64_t x = next();
  while (x > limit) x = next();
  return lo + static_cast<std::int64_t>(x % span);
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::size_t Rng::index(std::size_t n) {
  BM_REQUIRE(n > 0, "index() requires n > 0");
  return static_cast<std::size_t>(uniform(0, static_cast<std::int64_t>(n) - 1));
}

std::size_t Rng::weighted(std::span<const double> weights) {
  BM_REQUIRE(!weights.empty(), "weighted() requires weights");
  double total = 0;
  for (double w : weights) {
    BM_REQUIRE(w >= 0 && std::isfinite(w), "weights must be finite and >= 0");
    total += w;
  }
  BM_REQUIRE(total > 0, "weighted() requires a positive weight sum");
  double x = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0) return i;
  }
  return weights.size() - 1;  // numerical fallback
}

Rng Rng::fork() {
  Rng child(0);
  for (auto& s : child.s_) s = next();
  if ((child.s_[0] | child.s_[1] | child.s_[2] | child.s_[3]) == 0)
    child.s_[0] = 1;
  return child;
}

Rng benchmark_rng(std::uint64_t base_seed, std::size_t index) {
  std::uint64_t mix = base_seed;
  (void)split_mix64(mix);
  mix ^= 0x5851F42D4C957F2Dull * (index + 1);
  return Rng(split_mix64(mix));
}

}  // namespace bm
