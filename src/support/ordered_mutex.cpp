#include "support/ordered_mutex.hpp"

#if BM_LOCK_ORDER_CHECK

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace bm {
namespace lock_order_detail {

namespace {

/// Distinct (from-level, to-level) acquisition edges seen process-wide,
/// with the first witnessing mutex names. Small and append-only: the
/// hierarchy has a handful of levels, so linear scans beat a map here.
struct EdgeTable {
  std::mutex mu;  // meta-lock; never held while any OrderedMutex is taken
  std::vector<LockOrderEdge> edges;
};

EdgeTable& edge_table() {
  static EdgeTable t;
  return t;
}

/// The calling thread's held mutexes, acquisition-ordered (bottom first).
std::vector<const OrderedMutexBase*>& held_stack() {
  thread_local std::vector<const OrderedMutexBase*> stack;
  return stack;
}

void record_edge(const OrderedMutexBase* from, const OrderedMutexBase* to) {
  EdgeTable& t = edge_table();
  std::lock_guard<std::mutex> lock(t.mu);
  for (const LockOrderEdge& e : t.edges)
    if (e.from_level == from->level() && e.to_level == to->level()) return;
  t.edges.push_back(
      {from->level(), to->level(), from->name(), to->name()});
}

/// The witness for an inversion: if the opposite order (attempted ->
/// held) was ever observed anywhere in the process, name it — the pair of
/// sites is the would-be deadlock cycle.
const LockOrderEdge* find_opposite(const OrderedMutexBase* held,
                                   const OrderedMutexBase* attempted) {
  EdgeTable& t = edge_table();
  std::lock_guard<std::mutex> lock(t.mu);
  for (const LockOrderEdge& e : t.edges)
    if (e.from_level == attempted->level() && e.to_level == held->level())
      return &e;
  return nullptr;
}

[[noreturn]] void die(const OrderedMutexBase* attempted,
                      const char* problem) {
  std::fprintf(stderr,
               "\nbm: LOCK ORDER VIOLATION: %s while acquiring "
               "'%s' (level %u)\n",
               problem, attempted->name(),
               static_cast<unsigned>(attempted->level()));
  std::fprintf(stderr, "  held by this thread (acquisition order):\n");
  for (const OrderedMutexBase* m : held_stack())
    std::fprintf(stderr, "    '%s' (level %u)\n", m->name(),
                 static_cast<unsigned>(m->level()));
  for (const OrderedMutexBase* m : held_stack()) {
    if (const LockOrderEdge* e = find_opposite(m, attempted))
      std::fprintf(stderr,
                   "  cycle witness: '%s' -> '%s' was acquired in the "
                   "opposite order elsewhere (levels %u -> %u)\n",
                   e->from_name, e->to_name,
                   static_cast<unsigned>(e->from_level),
                   static_cast<unsigned>(e->to_level));
  }
  std::fprintf(stderr,
               "  hierarchy: see LockLevel in support/ordered_mutex.hpp "
               "and docs/CONCURRENCY.md\n\n");
  std::abort();
}

}  // namespace

void before_acquire(const OrderedMutexBase* m) {
  for (const OrderedMutexBase* h : held_stack()) {
    if (h == m) die(m, "relocking a mutex already held");
    if (h->level() >= m->level())
      die(m, "holding an equal-or-higher level");
  }
}

void acquired(const OrderedMutexBase* m) {
  for (const OrderedMutexBase* h : held_stack()) record_edge(h, m);
  held_stack().push_back(m);
}

void released(const OrderedMutexBase* m) {
  std::vector<const OrderedMutexBase*>& stack = held_stack();
  // Releases are LIFO in practice; scan from the top so out-of-order
  // unlocks (legal, just unusual) stay correct.
  for (std::size_t i = stack.size(); i > 0; --i) {
    if (stack[i - 1] == m) {
      stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(i - 1));
      return;
    }
  }
  die(m, "releasing a mutex this thread does not hold");
}

}  // namespace lock_order_detail

std::size_t lock_order_edge_count() {
  lock_order_detail::EdgeTable& t = lock_order_detail::edge_table();
  std::lock_guard<std::mutex> lock(t.mu);
  return t.edges.size();
}

LockOrderEdge lock_order_edge(std::size_t i) {
  lock_order_detail::EdgeTable& t = lock_order_detail::edge_table();
  std::lock_guard<std::mutex> lock(t.mu);
  return i < t.edges.size() ? t.edges[i] : LockOrderEdge{};
}

std::size_t lock_order_held_depth() {
  return lock_order_detail::held_stack().size();
}

}  // namespace bm

#else

// Release builds: OrderedMutex is header-only plain std::mutex; nothing to
// emit, but keep the TU non-empty for strict toolchains.
namespace bm {
namespace lock_order_detail {
void ordered_mutex_release_build_anchor() {}
}  // namespace lock_order_detail
}  // namespace bm

#endif  // BM_LOCK_ORDER_CHECK
