// Streaming and batch descriptive statistics for experiment aggregation.
#pragma once

#include <cstddef>
#include <vector>

namespace bm {

/// Welford-style streaming accumulator: mean, variance, min, max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;   ///< sample variance (n-1); 0 if n < 2
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch percentile (linear interpolation); q in [0,1]. Copies and sorts.
double percentile(std::vector<double> values, double q);

/// Pearson correlation of two equal-length series; 0 if degenerate.
double correlation(const std::vector<double>& xs,
                   const std::vector<double>& ys);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; out-of-range
/// values clamp into the end buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace bm
