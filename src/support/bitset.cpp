#include "support/bitset.hpp"

#include <bit>
#include <sstream>

namespace bm {

DynBitset::DynBitset(std::size_t nbits, bool value)
    : nbits_(nbits), words_((nbits + 63) / 64, 0) {
  if (value) set_all();
}

bool DynBitset::test(std::size_t i) const {
  BM_REQUIRE(i < nbits_, "bit index out of range");
  return (words_[i / 64] >> (i % 64)) & 1u;
}

void DynBitset::set(std::size_t i, bool value) {
  BM_REQUIRE(i < nbits_, "bit index out of range");
  const std::uint64_t mask = 1ull << (i % 64);
  if (value)
    words_[i / 64] |= mask;
  else
    words_[i / 64] &= ~mask;
}

void DynBitset::clear() {
  for (auto& w : words_) w = 0;
}

void DynBitset::set_all() {
  for (auto& w : words_) w = ~0ull;
  // Mask off bits beyond the domain so count()/equality stay exact.
  if (nbits_ % 64 != 0 && !words_.empty())
    words_.back() &= (1ull << (nbits_ % 64)) - 1;
}

std::size_t DynBitset::count() const {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool DynBitset::any() const {
  for (auto w : words_)
    if (w) return true;
  return false;
}

void DynBitset::check_domain(const DynBitset& other) const {
  BM_REQUIRE(nbits_ == other.nbits_, "bitset domain mismatch");
}

bool DynBitset::is_subset_of(const DynBitset& other) const {
  check_domain(other);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if (words_[i] & ~other.words_[i]) return false;
  return true;
}

bool DynBitset::intersects(const DynBitset& other) const {
  check_domain(other);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if (words_[i] & other.words_[i]) return true;
  return false;
}

DynBitset& DynBitset::operator|=(const DynBitset& other) {
  check_domain(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynBitset& DynBitset::operator&=(const DynBitset& other) {
  check_domain(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynBitset& DynBitset::operator-=(const DynBitset& other) {
  check_domain(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

bool DynBitset::operator==(const DynBitset& other) const {
  return nbits_ == other.nbits_ && words_ == other.words_;
}

std::vector<std::size_t> DynBitset::to_indices() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for_each([&](std::size_t i) { out.push_back(i); });
  return out;
}

std::string DynBitset::to_string() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for_each([&](std::size_t i) {
    if (!first) os << ',';
    first = false;
    os << i;
  });
  os << '}';
  return os.str();
}

}  // namespace bm
