// Deterministic pseudo-random number generation.
//
// All randomness in the library (benchmark synthesis and scheduler
// tie-breaks) flows through Rng, a xoshiro256** generator seeded via
// SplitMix64, so every experiment is reproducible from a single 64-bit seed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/assert.hpp"

namespace bm {

/// SplitMix64 step; used to expand a user seed into xoshiro state.
std::uint64_t split_mix64(std::uint64_t& state);

/// xoshiro256** PRNG with convenience draws. Copyable; copies diverge
/// independently, which makes per-benchmark sub-streams cheap.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Raw 64-bit draw.
  std::uint64_t next();

  /// UniformRandomBitGenerator interface (usable with <random> and
  /// std::shuffle).
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ull; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli draw with probability p of true.
  bool chance(double p);

  /// Index into [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Weighted index draw: returns i with probability weights[i]/sum.
  /// Requires a non-empty span with a positive sum.
  std::size_t weighted(std::span<const double> weights);

  /// Derive an independent child stream (e.g. one per benchmark instance).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

/// The canonical per-benchmark stream: an independent Rng derived from
/// (base_seed, index). Every consumer of seeded benchmarks — the experiment
/// harness, the scheduling service, the golden corpora — derives streams
/// through this one function so their draws agree bit-for-bit.
Rng benchmark_rng(std::uint64_t base_seed, std::size_t index);

}  // namespace bm
