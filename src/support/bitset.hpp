// DynBitset — a compact dynamic bitset used for barrier participation masks
// and reachability rows. Sized at construction; word-parallel set algebra.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/assert.hpp"

namespace bm {

class DynBitset {
 public:
  DynBitset() = default;
  explicit DynBitset(std::size_t nbits, bool value = false);

  std::size_t size() const { return nbits_; }
  bool empty_domain() const { return nbits_ == 0; }

  bool test(std::size_t i) const;
  void set(std::size_t i, bool value = true);
  void reset(std::size_t i) { set(i, false); }
  void clear();          ///< reset all bits
  void set_all();        ///< set all bits

  std::size_t count() const;   ///< population count
  bool any() const;
  bool none() const { return !any(); }

  /// True iff every set bit of *this is also set in other. Requires equal
  /// domains.
  bool is_subset_of(const DynBitset& other) const;
  /// True iff the two sets share at least one bit.
  bool intersects(const DynBitset& other) const;

  DynBitset& operator|=(const DynBitset& other);
  DynBitset& operator&=(const DynBitset& other);
  DynBitset& operator-=(const DynBitset& other);  ///< set difference

  friend DynBitset operator|(DynBitset a, const DynBitset& b) { return a |= b; }
  friend DynBitset operator&(DynBitset a, const DynBitset& b) { return a &= b; }

  bool operator==(const DynBitset& other) const;

  /// Indices of set bits, ascending.
  std::vector<std::size_t> to_indices() const;

  /// Call fn(i) for each set bit i, ascending.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word) {
        const int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// "{0,3,7}" style rendering for diagnostics.
  std::string to_string() const;

 private:
  void check_domain(const DynBitset& other) const;

  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace bm
