// Lock-hierarchy-checked mutex for the multithreaded serving stack.
//
// Every long-lived mutex in the daemon is an OrderedMutex carrying a level
// from the central LockLevel table below plus a human-readable name. In
// checking builds (BM_LOCK_ORDER_CHECK=1, the default for every tree
// except Release/bench) each thread tracks the stack of levels it holds
// and every acquisition:
//   - must be at a level *strictly greater* than every level already held
//     by the thread (the static hierarchy — so any cross-thread
//     lock-order inversion is impossible by construction);
//   - is recorded as a set of (held-level -> acquired-level) edges in a
//     global acquisition graph, so a violation aborts with a concrete
//     witness: the offending stack, plus where the opposite order was
//     first observed (file-free, name-based — enough to find the site).
//
// A violation is a programming bug, never load-dependent, so the response
// is fprintf + abort (like BM_ASSERT_INTERNAL), not an exception.
//
// In Release builds (BM_LOCK_ORDER_CHECK=0, set by CMake for
// CMAKE_BUILD_TYPE=Release — notably the build-bench/ tree behind
// scripts/bench_gate.py) OrderedMutex compiles to a plain std::mutex:
// lock/unlock inline to mu_.lock()/mu_.unlock() and the level/name members
// vanish, so the type is layout- and cost-identical to std::mutex. The
// gated BM_ServeCacheHit benchmark pins that claim.
//
// Condition variables: OrderedMutex satisfies Lockable, so waiting uses
// std::condition_variable_any with an OrderedLock. The wait's internal
// unlock/relock goes through the instrumented methods, keeping the held
// stack exact across the wait.
//
// The current hierarchy is documented in docs/CONCURRENCY.md; tests
// (ordered_mutex_test.cpp) pin both the accept and the abort paths.
#pragma once

#include <cstdint>
#include <mutex>

#ifndef BM_LOCK_ORDER_CHECK
#ifdef NDEBUG
#define BM_LOCK_ORDER_CHECK 0
#else
#define BM_LOCK_ORDER_CHECK 1
#endif
#endif

namespace bm {

/// The lock hierarchy, one level per mutex *role* (instances share the
/// level: two mutexes of one level must never be held together, which is
/// exactly right for e.g. per-connection mutexes). Levels only constrain
/// *nesting*: a thread holding level L may acquire only levels > L.
/// Today every serving-stack mutex is a leaf (no bm mutex is acquired
/// under another); the ordering below is the design intent for future
/// nesting and the checker keeps it honest. Gaps leave room to grow.
enum class LockLevel : std::uint16_t {
  /// serve/net.cpp Server::Impl::conn_mu — connection registry; held only
  /// around registry mutation and fd shutdown fan-out.
  kServerConns = 10,
  /// serve/core.hpp ServeCore::mu_ — admission stats + idle session pool.
  kServeCore = 20,
  /// serve/cache.hpp ScheduleCache::mu_ — LRU list + index + stats.
  kScheduleCache = 30,
  /// serve/net.cpp ConnState::write_mu — serializes response frames on one
  /// connection fd.
  kConnWrite = 40,
  /// serve/net.cpp ConnState::mu — per-connection outstanding-request
  /// count (quiesce handshake).
  kConnState = 50,
  /// serve/telemetry.hpp ServeTelemetry::log_mu_ — access-log stream.
  kTelemetryLog = 60,
  /// support/thread_pool.hpp ThreadPool::mu_ — task queue. Deepest: a
  /// worker dequeues with no other bm lock held, and the enqueue path may
  /// run under any of the layers above.
  kThreadPool = 70,
  /// exec/runtime.cpp Runtime stats_mu_ — per-thread WaitStats merge at PE
  /// stream completion. A leaf like kThreadPool: held for a few adds with
  /// no other bm lock held, and never on the instruction/barrier fast path.
  kExecRuntime = 80,
  /// Testing only (ordered_mutex_test.cpp).
  kTestLow = 1000,
  kTestMid = 1010,
  kTestHigh = 1020,
};

#if BM_LOCK_ORDER_CHECK
namespace lock_order_detail {
class OrderedMutexBase;
void before_acquire(const OrderedMutexBase* m);
void acquired(const OrderedMutexBase* m);
void released(const OrderedMutexBase* m);

class OrderedMutexBase {
 public:
  OrderedMutexBase(LockLevel level, const char* name)
      : level_(static_cast<std::uint16_t>(level)), name_(name) {}
  std::uint16_t level() const { return level_; }
  const char* name() const { return name_; }

 private:
  std::uint16_t level_;
  const char* name_;
};
}  // namespace lock_order_detail
#endif

class OrderedMutex
#if BM_LOCK_ORDER_CHECK
    : public lock_order_detail::OrderedMutexBase
#endif
{
 public:
#if BM_LOCK_ORDER_CHECK
  OrderedMutex(LockLevel level, const char* name)
      : OrderedMutexBase(level, name) {}
#else
  OrderedMutex(LockLevel /*level*/, const char* /*name*/) {}
#endif

  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

  void lock() {
#if BM_LOCK_ORDER_CHECK
    lock_order_detail::before_acquire(this);
#endif
    mu_.lock();
#if BM_LOCK_ORDER_CHECK
    lock_order_detail::acquired(this);
#endif
  }

  bool try_lock() {
#if BM_LOCK_ORDER_CHECK
    // A try_lock that *would* deadlock under contention is still a
    // hierarchy bug waiting to happen; hold it to the same standard.
    lock_order_detail::before_acquire(this);
    if (!mu_.try_lock()) return false;
    lock_order_detail::acquired(this);
    return true;
#else
    return mu_.try_lock();
#endif
  }

  void unlock() {
#if BM_LOCK_ORDER_CHECK
    lock_order_detail::released(this);
#endif
    mu_.unlock();
  }

 private:
  std::mutex mu_;
};

/// RAII guard over OrderedMutex; std::condition_variable_any waits on it.
using OrderedLock = std::unique_lock<OrderedMutex>;

#if BM_LOCK_ORDER_CHECK
/// Observed acquisition-graph edge: `to` was acquired while holding
/// `from`. Exposed for tests and for docs/CONCURRENCY.md regeneration.
struct LockOrderEdge {
  std::uint16_t from_level = 0;
  std::uint16_t to_level = 0;
  const char* from_name = nullptr;
  const char* to_name = nullptr;
};

/// Snapshot of every distinct edge recorded since process start.
/// Count-bounded and deduplicated; cheap enough for test assertions.
std::size_t lock_order_edge_count();
LockOrderEdge lock_order_edge(std::size_t i);

/// Number of levels currently held by the calling thread (test hook).
std::size_t lock_order_held_depth();
#endif

}  // namespace bm
