// Deterministic interleaving explorer for small concurrent programs — a
// DPOR-lite stateless model checker in the spirit of CHESS/Loom, used to
// exhaustively test the lock-free protocols in the serving core
// (tests/interleave_test.cpp models window rotation, cache hit-vs-evict,
// cancel-at-dequeue, exactly-once teardown).
//
// How it works:
//   - A model program registers 2–3 thread bodies (ix::Env::thread) and
//     end-state invariants (ix::Env::invariant). Shared state is built
//     from ix::Cell<T> (atomics with explicit memory orders), ix::Plain<T>
//     (non-atomic locations with vector-clock data-race detection) and
//     ix::Mutex.
//   - Every shared-memory operation is a yield point: the thread publishes
//     the operation it is about to perform and blocks; a scheduler thread
//     picks which runnable thread steps next. Worker threads are real
//     std::threads, persistent across executions, serialized by a
//     semaphore handshake so exactly one runs at a time.
//   - The whole run is a DFS over a decision stack holding both scheduling
//     choices and load-value choices: a relaxed/acquire load may read any
//     store in the cell's history that coherence and happens-before still
//     allow, which is how store-buffering/stale-read behaviours of the
//     weak memory model are explored without reordering stores.
//   - Happens-before is tracked with vector clocks (release stores,
//     acquire loads, release/acquire fences, mutex hand-off, RMW release
//     sequences). Plain accesses not ordered by HB are reported as data
//     races. Executions with no runnable unfinished thread are deadlocks.
//   - Sleep sets (Godefroid) prune interleavings that only reorder
//     independent operations; exploration is exhaustive-or-fail — Result
//     says whether the full space fit under Options::max_executions.
//
// The model API is deliberately tiny and value-typed (integral cells) —
// models re-state a protocol in ~20 lines rather than link the production
// classes, and the mutation selftest seeds the exact bug classes we care
// about (dropped fence, widened/narrowed critical section, CAS downgraded
// to plain load+store) to prove the harness catches them.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace bm::ix {

class Explorer;

enum class MemOrder { kRelaxed, kAcquire, kRelease, kAcqRel, kSeqCst };

const char* memorder_name(MemOrder mo);

struct Options {
  /// Exploration cap; hitting it reports Result::complete == false rather
  /// than silently passing on a truncated search.
  long max_executions = 100000;
  /// Per-execution scheduled-step cap (guards modelling mistakes that
  /// produce unbounded spins; reported as a violation).
  int max_steps = 2000;
  /// Sleep-set partial-order reduction. Off = plain exhaustive DFS; the
  /// selftest cross-checks both modes reach the same verdict.
  bool sleep_sets = true;
};

struct Violation {
  enum class Kind { kCheck, kInvariant, kDataRace, kDeadlock, kStepLimit };
  Kind kind = Kind::kCheck;
  std::string message;
  /// Event log of the failing execution, one scheduled op per line.
  std::vector<std::string> trace;
};

const char* violation_kind_name(Violation::Kind k);

struct Result {
  long executions = 0;
  bool complete = false;  ///< full space explored within max_executions
  std::optional<Violation> violation;

  /// The model checked out: no violation and the search was exhaustive.
  bool ok() const { return complete && !violation; }
};

namespace detail {

inline constexpr int kMaxThreads = 8;

/// Current explorer + worker thread id (-1 on the scheduler thread). Set
/// for the duration of explore(); Cell/Plain/Mutex operations require it.
Explorer* cur();
int cur_tid();

struct VectorClock {
  std::uint32_t v[kMaxThreads] = {};

  void join(const VectorClock& o) {
    for (int i = 0; i < kMaxThreads; ++i)
      if (o.v[i] > v[i]) v[i] = o.v[i];
  }
  bool leq(const VectorClock& o) const {
    for (int i = 0; i < kMaxThreads; ++i)
      if (v[i] > o.v[i]) return false;
    return true;
  }
  void clear() {
    for (auto& x : v) x = 0;
  }
};

/// One entry in an atomic cell's modification order.
struct StoreRecord {
  std::uint64_t value = 0;
  VectorClock release;  ///< what an acquire load of this store synchronizes with
  VectorClock when;     ///< storing thread's clock: prunes HB-overwritten stores
  int by_tid = -1;
};

/// Untyped core of Cell<T>: modification order + per-thread read cursor.
class CellState {
 public:
  CellState(const char* name, std::uint64_t init);

  std::uint64_t load(MemOrder mo);
  void store(std::uint64_t val, MemOrder mo);
  std::uint64_t fetch_add(std::uint64_t d, MemOrder mo);
  std::uint64_t exchange(std::uint64_t val, MemOrder mo);
  bool compare_exchange(std::uint64_t& expected, std::uint64_t desired,
                        MemOrder mo);
  /// Blocks until the latest store satisfies `pred`, then acquire-loads it.
  /// Use for spin-wait loops: models "the spinner is eventually scheduled
  /// after the publish" without enumerating unbounded spin iterations.
  void await(std::function<bool(std::uint64_t)> pred, const char* what);

  std::uint64_t peek() const;  ///< latest value; invariants only

  const char* name() const { return name_; }

 private:
  friend class ::bm::ix::Explorer;
  std::uint64_t read_store(std::size_t idx, MemOrder mo);
  std::uint64_t rmw_read(MemOrder mo);
  void rmw_write(std::uint64_t val, MemOrder mo);

  const char* name_;
  std::vector<StoreRecord> stores_;
  int last_read_[kMaxThreads];
};

/// Untyped core of Plain<T>: value + FastTrack-style race clocks.
class PlainState {
 public:
  PlainState(const char* name, std::uint64_t init);

  std::uint64_t read();
  void write(std::uint64_t val);
  std::uint64_t peek() const { return value_; }

  const char* name() const { return name_; }

  /// Race bookkeeping, driven by the Explorer. A read races unless the
  /// last write happened-before it; a write additionally needs every
  /// prior read ordered before it.
  bool race_check_read(const VectorClock& c) const {
    return write_clock_.leq(c);
  }
  bool race_check_write(const VectorClock& c, int& other) const {
    if (!write_clock_.leq(c)) {
      other = last_writer_;
      return false;
    }
    for (int u = 0; u < kMaxThreads; ++u)
      if (read_clock_.v[u] > c.v[u]) {
        other = u;
        return false;
      }
    return true;
  }
  void note_read(int tid, const VectorClock& c) {
    read_clock_.v[tid] = c.v[tid];
  }
  void note_write(int tid, const VectorClock& c, std::uint64_t v) {
    write_clock_ = c;
    last_writer_ = tid;
    value_ = v;
  }
  int last_writer() const { return last_writer_; }

 private:
  const char* name_;
  std::uint64_t value_;
  VectorClock write_clock_;
  int last_writer_ = -1;
  VectorClock read_clock_;
};

}  // namespace detail

/// Modelled atomic variable. T must be an integral or enum type that fits
/// in 64 bits; values round-trip through uint64_t.
template <typename T>
class Cell {
 public:
  Cell(const char* name, T init)
      : st_(name, static_cast<std::uint64_t>(init)) {}

  T load(MemOrder mo) { return static_cast<T>(st_.load(mo)); }
  void store(T v, MemOrder mo) { st_.store(static_cast<std::uint64_t>(v), mo); }
  T fetch_add(T d, MemOrder mo) {
    return static_cast<T>(st_.fetch_add(static_cast<std::uint64_t>(d), mo));
  }
  T exchange(T v, MemOrder mo) {
    return static_cast<T>(st_.exchange(static_cast<std::uint64_t>(v), mo));
  }
  bool compare_exchange(T& expected, T desired, MemOrder mo) {
    auto e = static_cast<std::uint64_t>(expected);
    const bool ok =
        st_.compare_exchange(e, static_cast<std::uint64_t>(desired), mo);
    expected = static_cast<T>(e);
    return ok;
  }
  /// Spin-wait replacement: block until the latest store equals `v`.
  void await_eq(T v) {
    st_.await([u = static_cast<std::uint64_t>(v)](
                  std::uint64_t x) { return x == u; },
              "await_eq");
  }

  T peek() const { return static_cast<T>(st_.peek()); }

 private:
  detail::CellState st_;
};

/// Modelled non-atomic location: unsynchronized concurrent access (at
/// least one write) is reported as a data race.
template <typename T>
class Plain {
 public:
  Plain(const char* name, T init)
      : st_(name, static_cast<std::uint64_t>(init)) {}

  T read() { return static_cast<T>(st_.read()); }
  void write(T v) { st_.write(static_cast<std::uint64_t>(v)); }
  T peek() const { return static_cast<T>(st_.peek()); }

 private:
  detail::PlainState st_;
};

/// Modelled mutex: lock blocks (thread not runnable) while held; HB flows
/// unlock -> next lock. Misuse (unlock by non-owner) is a check violation.
class Mutex {
 public:
  explicit Mutex(const char* name) : name_(name) {}

  void lock();
  void unlock();

 private:
  friend class Explorer;
  const char* name_;
  int held_by_ = -1;
  detail::VectorClock clock_;
};

/// Standalone fence. Thread-local clock effect only, so not a yield point:
/// release snapshots the clock for later relaxed stores; acquire joins the
/// release clocks of previously relaxed-loaded stores.
void fence(MemOrder mo);

/// In-thread assertion: records a Violation::Kind::kCheck and aborts the
/// current execution when `cond` is false. Not a yield point.
void check(bool cond, const std::string& msg);

/// Per-execution program description, built fresh for every interleaving.
class Env {
 public:
  /// Registers a thread body. Call count must be identical across
  /// executions (bodies are assigned to the persistent worker pool).
  void thread(std::function<void()> body);

  /// End-state invariant, evaluated after all threads finished, reading
  /// final values via peek(). Failure records Violation::Kind::kInvariant.
  void invariant(std::string name, std::function<bool()> inv);

 private:
  friend class Explorer;
  std::vector<std::function<void()>> bodies_;
  std::vector<std::pair<std::string, std::function<bool()>>> invariants_;
};

/// Runs `program` under every schedule (and every allowed load-value
/// resolution), stopping at the first violation. `program` is invoked at
/// the start of each execution and must build fresh shared state.
Result explore(const Options& opts,
               const std::function<void(Env&)>& program);

}  // namespace bm::ix
