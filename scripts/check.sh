#!/usr/bin/env bash
# Full verification: configure, build, run the test suite (including the
# parallel-harness determinism and barrier-cache consistency tests), smoke
# every registered experiment through bmrun with a reduced seed count, and
# record the perf microbench trajectory as BENCH_sched.json at the repo
# root. `--asan` additionally builds and tests under AddressSanitizer in a
# separate build tree (build-asan/); `--trace-smoke` additionally produces
# a --trace run and validates the JSON with trace_check.
set -euo pipefail
cd "$(dirname "$0")/.."

asan=0
trace_smoke=0
for arg in "$@"; do
  case "$arg" in
    --asan) asan=1 ;;
    --trace-smoke) trace_smoke=1 ;;
    *) echo "usage: $0 [--asan] [--trace-smoke]" >&2; exit 2 ;;
  esac
done

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# The two perf-layer test binaries are the contract for this repo's
# performance work — run them explicitly (fast) so a filtered ctest cache
# can never silently skip them.
./build/tests/parallel_harness_test > /dev/null && echo "ok  parallel_harness_test"
./build/tests/barrier_cache_test > /dev/null && echo "ok  barrier_cache_test"

# Smoke every registered experiment. The list is asked from the registry
# itself (not hard-coded), so a new experiments/*.cpp file is covered here
# automatically. Artifacts land in out/ (gitignored).
for exp in $(./build/bmrun list --names); do
  ./build/bmrun run "$exp" --seeds 10 --jobs 2 --out-dir out > /dev/null \
    && echo "ok  $exp"
done

# Perf trajectory: benchmark JSON checked in at the repo root so PRs can be
# compared. bench_sim_perf runs too (smoke + local inspection) but only the
# scheduler-side numbers are tracked.
./build/bench/bench_scheduler_perf --benchmark_format=json \
    --benchmark_out=BENCH_sched.json --benchmark_out_format=json > /dev/null \
  && echo "ok  bench_scheduler_perf -> BENCH_sched.json"
./build/bench/bench_sim_perf --benchmark_format=json > /tmp/bench_sim.json \
  && echo "ok  bench_sim_perf"

if [[ "$trace_smoke" -eq 1 ]]; then
  # A traced run must emit Perfetto-loadable JSON: structurally valid, with
  # at least one timed event. trace_check is the in-repo validator.
  ./build/bmrun run headline --seeds 3 --jobs 2 --trace out/trace-smoke.json \
      --out-dir out > /dev/null
  ./build/trace_check out/trace-smoke.json && echo "ok  trace-smoke"
fi

if [[ "$asan" -eq 1 ]]; then
  echo "--- AddressSanitizer pass (build-asan/) ---"
  cmake -B build-asan -G Ninja -DBM_SANITIZE=address
  cmake --build build-asan
  ctest --test-dir build-asan --output-on-failure
  ./build-asan/bmrun run --all --seeds 3 --jobs 2 --out-dir out-asan > /dev/null \
    && echo "ok  bmrun run --all (asan)"
  rm -rf out-asan
fi

echo "all checks passed"
