#!/usr/bin/env bash
# Full verification: configure, build, run the test suite (including the
# parallel-harness determinism and barrier-cache consistency tests), smoke
# every registered experiment through bmrun with a reduced seed count, and
# smoke the perf microbenchmarks. `--asan` / `--ubsan` / `--tsan`
# additionally build and test under Address- / UndefinedBehavior- /
# ThreadSanitizer in separate build trees (build-asan/, build-ubsan/,
# build-tsan/; combine `--tsan` with `--serve-smoke`/`--stats-smoke` to
# repeat those smokes against the TSan tree, tsan.supp applied);
# `--trace-smoke` additionally produces
# a --trace run and validates the JSON with trace_check; `--verify-smoke`
# exercises the static schedule verifier (golden schedule, mutation
# rejection, selftest, bmrun --verify); `--serve-smoke` boots bmserve on a
# temp socket and drives a few thousand bmload requests through it, then
# asserts a clean SIGTERM drain (combined with --asan it repeats the smoke
# against the AddressSanitizer tree); `--stats-smoke` boots bmserve with
# the full telemetry surface (access log, slow traces), polls the `stats
# v1` verb mid-load via `bmload --stats`, SIGUSR1-dumps the snapshot, and
# validates an emitted slow trace with trace_check.
#
# Benchmark regression gate (separate Release tree, build-bench/):
#   --bench-gate   build build-bench/ (forced Release), run the gated
#                  benchmarks with repetitions, and compare against the
#                  committed BENCH_{sched,sim,batch}.json baselines
#                  via scripts/bench_gate.py (fails on >10% + noise
#                  regression of any gated benchmark). Also runs the
#                  gate's selftest (a synthetic above-threshold slowdown must trip).
#   --bench-regen  rebuild build-bench/ and REGENERATE the committed
#                  baselines from it. Use on a quiet machine; commit the
#                  resulting BENCH_*.json.
set -euo pipefail
cd "$(dirname "$0")/.."

asan=0
ubsan=0
tsan=0
trace_smoke=0
verify_smoke=0
serve_smoke=0
stats_smoke=0
bench_gate=0
bench_regen=0
exec_smoke=0
for arg in "$@"; do
  case "$arg" in
    --asan) asan=1 ;;
    --ubsan) ubsan=1 ;;
    --tsan) tsan=1 ;;
    --trace-smoke) trace_smoke=1 ;;
    --verify-smoke) verify_smoke=1 ;;
    --serve-smoke) serve_smoke=1 ;;
    --stats-smoke) stats_smoke=1 ;;
    --exec-smoke) exec_smoke=1 ;;
    --bench-gate) bench_gate=1 ;;
    --bench-regen) bench_regen=1 ;;
    *) echo "usage: $0 [--asan] [--ubsan] [--tsan] [--trace-smoke]" \
            "[--verify-smoke] [--serve-smoke] [--stats-smoke]" \
            "[--exec-smoke] [--bench-gate] [--bench-regen]" >&2
       exit 2 ;;
  esac
done

# Native-execution smoke against a given build tree: the BM_EXEC_SLOW-gated
# test set (full 100-schedule parity corpus, 64-way barrier hammering) via
# the `slow` ctest label, then a golden-corpus spot check through the bmexec
# CLI — both primitives, blocking and oversubscribed-cooperative mappings,
# value-compared against the interpreter oracle (bmexec exits 1 on any
# mismatch, 2 on usage errors).
run_exec_smoke() {
  local tree="$1"
  BM_EXEC_SLOW=1 ctest --test-dir "$tree" -L slow --output-on-failure
  local seed
  for seed in 0 7 24; do
    "$tree/bmexec" run --seed "$seed" --barrier both --threads 0 > /dev/null
    "$tree/bmexec" run --seed "$seed" --barrier both --threads 3 > /dev/null
  done
  "$tree/bmexec" run --seed 3 --policy optimal --machine dbm --compiled \
      > /dev/null
  mkdir -p out
  "$tree/bmexec" emit --seed 0 --out out/exec-smoke-emit.cpp > /dev/null
  [[ -s out/exec-smoke-emit.cpp ]]
  "$tree/bmexec" calibrate --repeats 2 --rounds 200 > /dev/null
  echo "ok  exec-smoke ($tree)"
}

# bmserve/bmload end-to-end smoke against a given build tree: a few
# thousand requests over several connections (verified schedules, mixed
# cache hits), zero client-side errors, then a SIGTERM drain that must
# exit 0 with "drained" on stdout and errors=0 in the final stats.
run_serve_smoke() {
  local tree="$1" sock stats_log
  sock="$(mktemp -u /tmp/bmserve-smoke.XXXXXX.sock)"
  stats_log="$(mktemp /tmp/bmserve-smoke.XXXXXX.log)"
  "$tree/bmserve" --socket "$sock" --workers 2 > "$stats_log" 2>&1 &
  local srv=$!
  for _ in $(seq 50); do [[ -S "$sock" ]] && break; sleep 0.1; done
  [[ -S "$sock" ]] || { echo "bmserve never opened $sock" >&2; exit 1; }
  "$tree/bmload" --socket "$sock" --requests 3000 --connections 4 \
      --distinct 25 --verify \
    || { echo "bmload reported failures ($tree)" >&2; kill "$srv"; exit 1; }
  kill -TERM "$srv"
  wait "$srv" \
    || { echo "bmserve did not drain cleanly ($tree)" >&2; exit 1; }
  grep -q "^bmserve: drained$" "$stats_log"
  grep -q "^errors 0$" "$stats_log"
  rm -f "$sock" "$stats_log"
  echo "ok  serve-smoke ($tree)"
}

# Telemetry end-to-end smoke against a given build tree: bmserve with the
# access log + slow-trace surface on, a stats poll racing the load, a
# SIGUSR1 snapshot dump, and trace_check over one emitted slow trace.
run_stats_smoke() {
  local tree="$1" dir sock
  dir="$(mktemp -d /tmp/bmserve-stats-smoke.XXXXXX)"
  sock="$dir/bm.sock"
  mkdir -p "$dir/traces"
  "$tree/bmserve" --socket "$sock" --workers 2 \
      --access-log "$dir/access.jsonl" \
      --slow-trace-us 1 --trace-dir "$dir/traces" --slow-trace-max 16 \
      > "$dir/serve.log" 2> "$dir/serve.err" &
  local srv=$!
  for _ in $(seq 50); do [[ -S "$sock" ]] && break; sleep 0.1; done
  [[ -S "$sock" ]] || { echo "bmserve never opened $sock" >&2; exit 1; }
  # Load and dashboard race each other: the poller must see live traffic.
  "$tree/bmload" --socket "$sock" --requests 2000 --connections 4 \
      --distinct 25 > "$dir/load.log" &
  local load=$!
  "$tree/bmload" --socket "$sock" --stats --interval-ms 100 --iterations 5 \
      > "$dir/stats.log" \
    || { echo "stats poll failed ($tree)" >&2; kill "$srv" "$load"; exit 1; }
  wait "$load" \
    || { echo "bmload reported failures ($tree)" >&2; kill "$srv"; exit 1; }
  kill -USR1 "$srv"
  sleep 0.5
  kill -TERM "$srv"
  wait "$srv" \
    || { echo "bmserve did not drain cleanly ($tree)" >&2; exit 1; }
  grep -q '"stats":"v1"' "$dir/serve.err" \
    || { echo "SIGUSR1 dump missing ($tree)" >&2; exit 1; }
  grep -q "qps" "$dir/stats.log" \
    || { echo "stats dashboard empty ($tree)" >&2; exit 1; }
  [[ "$(wc -l < "$dir/access.jsonl")" -ge 2000 ]] \
    || { echo "access log too short ($tree)" >&2; exit 1; }
  local trace
  trace="$(ls "$dir"/traces/slow-req-*.trace.json 2>/dev/null | head -1)"
  [[ -n "$trace" ]] || { echo "no slow trace emitted ($tree)" >&2; exit 1; }
  "$tree/trace_check" "$trace" > /dev/null \
    || { echo "slow trace failed trace_check ($tree)" >&2; exit 1; }
  rm -rf "$dir"
  echo "ok  stats-smoke ($tree)"
}

# Benchmark timing only means anything from the dedicated Release tree;
# these modes skip the regular build/test pass entirely.
if [[ "$bench_gate" -eq 1 || "$bench_regen" -eq 1 ]]; then
  cmake -B build-bench -G Ninja -DCMAKE_BUILD_TYPE=Release
  cmake --build build-bench \
      --target bench_scheduler_perf bench_sim_perf bench_batch_sim \
               bench_serve bench_exec bmrun
  if [[ "$bench_regen" -eq 1 ]]; then
    python3 scripts/bench_gate.py run \
        build-bench/bench/bench_scheduler_perf BENCH_sched.json
    python3 scripts/bench_gate.py run \
        build-bench/bench/bench_sim_perf BENCH_sim.json
    python3 scripts/bench_gate.py run \
        build-bench/bench/bench_batch_sim BENCH_batch.json
    python3 scripts/bench_gate.py run \
        build-bench/bench/bench_serve BENCH_serve.json
    python3 scripts/bench_gate.py run \
        build-bench/bench/bench_exec BENCH_exec.json
    echo "baselines regenerated; review and commit BENCH_*.json"
  else
    python3 scripts/bench_gate.py validate BENCH_sched.json
    python3 scripts/bench_gate.py validate BENCH_sim.json
    python3 scripts/bench_gate.py validate BENCH_batch.json
    python3 scripts/bench_gate.py validate BENCH_serve.json
    python3 scripts/bench_gate.py validate BENCH_exec.json
    python3 scripts/bench_gate.py selftest BENCH_sched.json
    python3 scripts/bench_gate.py selftest BENCH_sim.json
    python3 scripts/bench_gate.py selftest BENCH_batch.json
    python3 scripts/bench_gate.py selftest BENCH_serve.json
    python3 scripts/bench_gate.py selftest BENCH_exec.json
    mkdir -p out
    python3 scripts/bench_gate.py run \
        build-bench/bench/bench_scheduler_perf out/bench_sched_current.json
    python3 scripts/bench_gate.py run \
        build-bench/bench/bench_sim_perf out/bench_sim_current.json
    python3 scripts/bench_gate.py run \
        build-bench/bench/bench_batch_sim out/bench_batch_current.json
    python3 scripts/bench_gate.py run \
        build-bench/bench/bench_serve out/bench_serve_current.json
    python3 scripts/bench_gate.py run \
        build-bench/bench/bench_exec out/bench_exec_current.json
    python3 scripts/bench_gate.py check out/bench_sched_current.json \
        --baseline BENCH_sched.json
    python3 scripts/bench_gate.py check out/bench_sim_current.json \
        --baseline BENCH_sim.json
    python3 scripts/bench_gate.py check out/bench_batch_current.json \
        --baseline BENCH_batch.json
    python3 scripts/bench_gate.py check out/bench_serve_current.json \
        --baseline BENCH_serve.json
    python3 scripts/bench_gate.py check out/bench_exec_current.json \
        --baseline BENCH_exec.json
    # Mega-DAG wall-clock budget: the full 10^6-tuple stress experiment must
    # finish inside BM_STRESS_BUDGET_SECS (default 60) on the Release tree.
    # A quadratic regression in the streaming CSR build or the labeling
    # sweeps blows this budget by orders of magnitude, not by noise.
    mkdir -p out
    timeout "${BM_STRESS_BUDGET_SECS:-60}" \
        ./build-bench/bmrun run stress_megadag --seeds 1 --jobs 1 \
        --out-dir out > /dev/null \
      && echo "ok  stress_megadag under budget" \
      || { echo "stress_megadag exceeded the bench-gate budget" >&2; exit 1; }
    echo "bench gate passed"
  fi
  exit 0
fi

# Static concurrency hygiene: every memory_order_relaxed under src/ must
# carry a `// mo:` rationale (docs/CONCURRENCY.md describes the contract).
python3 scripts/lint_atomics.py src

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# The two perf-layer test binaries are the contract for this repo's
# performance work — run them explicitly (fast) so a filtered ctest cache
# can never silently skip them.
./build/tests/parallel_harness_test > /dev/null && echo "ok  parallel_harness_test"
./build/tests/barrier_cache_test > /dev/null && echo "ok  barrier_cache_test"

# Smoke every registered experiment. The list is asked from the registry
# itself (not hard-coded), so a new experiments/*.cpp file is covered here
# automatically. Artifacts land in out/ (gitignored).
for exp in $(./build/bmrun list --names); do
  ./build/bmrun run "$exp" --seeds 10 --jobs 2 --out-dir out > /dev/null \
    && echo "ok  $exp"
done

# Smoke the microbench binaries (one rep, throwaway output). The committed
# BENCH_*.json baselines are NOT written here: they only come from the
# forced-Release build-bench/ tree via `--bench-regen`, and bench_gate.py
# refuses JSON whose context is not stamped Release.
./build/bench/bench_scheduler_perf --benchmark_format=json \
    > /tmp/bench_sched_smoke.json && echo "ok  bench_scheduler_perf (smoke)"
./build/bench/bench_sim_perf --benchmark_format=json \
    > /tmp/bench_sim_smoke.json && echo "ok  bench_sim_perf (smoke)"
./build/bench/bench_batch_sim --benchmark_format=json \
    > /tmp/bench_batch_smoke.json && echo "ok  bench_batch_sim (smoke)"
./build/bench/bench_exec --benchmark_format=json \
    --benchmark_filter='BM_ExecLower/24' \
    > /tmp/bench_exec_smoke.json && echo "ok  bench_exec (smoke)"

if [[ "$verify_smoke" -eq 1 ]]; then
  mkdir -p out
  # The committed golden schedule must verify clean; a mutated copy (one
  # barrier dropped) must be rejected with a BV101 race carrying a witness;
  # and a reduced mutation campaign must flag every scored mutant. Together
  # these pin the verifier's exit codes, JSON shape, and sensitivity.
  ./build/bmverify check examples/golden/golden_block.bm \
      examples/golden/golden_schedule.txt > /dev/null \
    && echo "ok  bmverify check (golden clean)"
  # B4 is a load-bearing barrier of the golden schedule (dropping it opens
  # a provable race window); `random` could land on a benign victim.
  ./build/bmverify gen --seed 1990 --statements 28 --variables 8 --procs 4 \
      --mutate-drop 4 --json > out/verify-mutant.json 2> /dev/null \
    && { echo "mutated golden schedule verified clean" >&2; exit 1; } \
    || true
  grep -q '"BV101"' out/verify-mutant.json
  grep -q '"witness"' out/verify-mutant.json
  echo "ok  bmverify gen --mutate-drop (race + witness reported)"
  ./build/bmverify selftest --mutations 60 > /dev/null \
    && echo "ok  bmverify selftest (60 mutations)"
  ./build/bmrun run headline --seeds 3 --jobs 2 --verify --out-dir out \
      > /dev/null && echo "ok  bmrun --verify"
fi

if [[ "$serve_smoke" -eq 1 ]]; then
  run_serve_smoke build
fi

if [[ "$stats_smoke" -eq 1 ]]; then
  run_stats_smoke build
fi

if [[ "$exec_smoke" -eq 1 ]]; then
  run_exec_smoke build
fi

if [[ "$trace_smoke" -eq 1 ]]; then
  # A traced run must emit Perfetto-loadable JSON: structurally valid, with
  # at least one timed event. trace_check is the in-repo validator.
  ./build/bmrun run headline --seeds 3 --jobs 2 --trace out/trace-smoke.json \
      --out-dir out > /dev/null
  ./build/trace_check out/trace-smoke.json && echo "ok  trace-smoke"
fi

if [[ "$asan" -eq 1 ]]; then
  echo "--- AddressSanitizer pass (build-asan/) ---"
  cmake -B build-asan -G Ninja -DBM_SANITIZE=address
  cmake --build build-asan
  ctest --test-dir build-asan --output-on-failure
  ./build-asan/bmrun run --all --seeds 3 --jobs 2 --out-dir out-asan > /dev/null \
    && echo "ok  bmrun run --all (asan)"
  if [[ "$serve_smoke" -eq 1 ]]; then
    run_serve_smoke build-asan
  fi
  rm -rf out-asan
fi

if [[ "$tsan" -eq 1 ]]; then
  echo "--- ThreadSanitizer pass (build-tsan/) ---"
  # halt_on_error turns any report into a nonzero exit so ctest and the
  # smokes below fail loudly; the suppressions file is for *external*
  # noise only (empty today) — races in our code get fixed, not silenced.
  export TSAN_OPTIONS="suppressions=$PWD/tsan.supp halt_on_error=1 second_deadlock_stack=1"
  cmake -B build-tsan -G Ninja -DBM_SANITIZE=thread
  cmake --build build-tsan
  ctest --test-dir build-tsan --output-on-failure
  ./build-tsan/bmrun run headline --seeds 3 --jobs 2 --out-dir out-tsan \
      > /dev/null && echo "ok  bmrun headline (tsan)"
  if [[ "$serve_smoke" -eq 1 ]]; then
    run_serve_smoke build-tsan
  fi
  if [[ "$stats_smoke" -eq 1 ]]; then
    run_stats_smoke build-tsan
  fi
  if [[ "$exec_smoke" -eq 1 ]]; then
    run_exec_smoke build-tsan
  fi
  rm -rf out-tsan
  unset TSAN_OPTIONS
fi

if [[ "$ubsan" -eq 1 ]]; then
  echo "--- UndefinedBehaviorSanitizer pass (build-ubsan/) ---"
  cmake -B build-ubsan -G Ninja -DBM_SANITIZE=undefined
  cmake --build build-ubsan
  ctest --test-dir build-ubsan --output-on-failure
  ./build-ubsan/bmrun run --all --seeds 3 --jobs 2 --verify \
      --out-dir out-ubsan > /dev/null && echo "ok  bmrun run --all (ubsan)"
  ./build-ubsan/bmverify selftest --mutations 40 > /dev/null \
    && echo "ok  bmverify selftest (ubsan)"
  rm -rf out-ubsan
fi

echo "all checks passed"
