#!/usr/bin/env bash
# Full verification: configure, build, run the test suite, and smoke every
# bench binary with a reduced seed count.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/bench_*; do
  name="$(basename "$b")"
  case "$name" in
    bench_scheduler_perf|bench_sim_perf)
      "$b" > /dev/null && echo "ok  $name" ;;
    *)
      "$b" --seeds 10 > /dev/null && echo "ok  $name" ;;
  esac
done
echo "all checks passed"
