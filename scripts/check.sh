#!/usr/bin/env bash
# Full verification: configure, build, run the test suite (including the
# parallel-harness determinism and barrier-cache consistency tests), smoke
# every bench binary with a reduced seed count, and record the perf
# microbench trajectory as BENCH_sched.json at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# The two perf-layer test binaries are the contract for this repo's
# performance work — run them explicitly (fast) so a filtered ctest cache
# can never silently skip them.
./build/tests/parallel_harness_test > /dev/null && echo "ok  parallel_harness_test"
./build/tests/barrier_cache_test > /dev/null && echo "ok  barrier_cache_test"

for b in build/bench/bench_*; do
  name="$(basename "$b")"
  case "$name" in
    bench_scheduler_perf|bench_sim_perf)
      ;;  # handled below with JSON output
    bench_headline)
      "$b" --seeds 10 --jobs 2 > /dev/null && echo "ok  $name (--jobs 2)" ;;
    *)
      "$b" --seeds 10 > /dev/null && echo "ok  $name" ;;
  esac
done

# Perf trajectory: benchmark JSON checked in at the repo root so PRs can be
# compared. bench_sim_perf runs too (smoke + local inspection) but only the
# scheduler-side numbers are tracked.
./build/bench/bench_scheduler_perf --benchmark_format=json \
    --benchmark_out=BENCH_sched.json --benchmark_out_format=json > /dev/null \
  && echo "ok  bench_scheduler_perf -> BENCH_sched.json"
./build/bench/bench_sim_perf --benchmark_format=json > /tmp/bench_sim.json \
  && echo "ok  bench_sim_perf"
echo "all checks passed"
