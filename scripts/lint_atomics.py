#!/usr/bin/env python3
"""Require a rationale comment on every relaxed atomic operation.

Every use of `memory_order_relaxed` under src/ must carry (on the same
line or within the preceding WINDOW lines) a `// mo:` comment explaining
why relaxed ordering is sufficient — what invariant makes the missing
synchronization safe. One comment may cover the handful of sites in the
statement block directly beneath it.

The point is reviewability: `memory_order_relaxed` is the single easiest
way to write a latent bug in this codebase, and "why is this safe" should
never require archaeology. docs/CONCURRENCY.md describes the conventions.

Usage: scripts/lint_atomics.py [root]   (default root: src/)
Exit 0 = clean, 1 = violations (listed one per line).
"""

import re
import sys
from pathlib import Path

WINDOW = 8  # lines above a site in which the // mo: comment must appear
PATTERN = re.compile(r"memory_order_relaxed")
RATIONALE = re.compile(r"//\s*mo:")
SUFFIXES = {".cpp", ".hpp", ".cc", ".h"}


def check_file(path: Path) -> list[str]:
    lines = path.read_text(encoding="utf-8").splitlines()
    bad = []
    for i, line in enumerate(lines):
        if not PATTERN.search(line):
            continue
        lo = max(0, i - WINDOW)
        if any(RATIONALE.search(lines[j]) for j in range(lo, i + 1)):
            continue
        bad.append(f"{path}:{i + 1}: memory_order_relaxed without a "
                   f"'// mo:' rationale comment within {WINDOW} lines")
    return bad


def main() -> int:
    root = Path(sys.argv[1] if len(sys.argv) > 1 else "src")
    if not root.exists():
        print(f"lint_atomics: no such directory: {root}", file=sys.stderr)
        return 2
    violations = []
    for path in sorted(root.rglob("*")):
        if path.suffix in SUFFIXES and path.is_file():
            violations.extend(check_file(path))
    for v in violations:
        print(v)
    if violations:
        print(f"lint_atomics: {len(violations)} unannotated "
              f"memory_order_relaxed site(s)", file=sys.stderr)
        return 1
    print(f"lint_atomics: OK ({root})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
