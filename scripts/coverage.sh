#!/usr/bin/env bash
# Line-coverage gate for the scheduler core. Builds build-cov/ with
# --coverage instrumentation, runs the test suite, and enforces a soft
# floor over src/sched/ + src/graph/ (the columnar hot path: the layers
# most likely to grow untested fast paths). The floor is deliberately
# conservative — it catches "forgot to test the new subsystem", not
# line-level nitpicks.
#
# Uses gcovr when installed (CI); otherwise falls back to aggregating
# plain `gcov -n` summaries, so the gate runs in minimal containers too.
set -euo pipefail
cd "$(dirname "$0")/.."

FLOOR="${BM_COV_FLOOR:-70}"

cmake -B build-cov -G Ninja -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="--coverage" -DCMAKE_EXE_LINKER_FLAGS="--coverage"
cmake --build build-cov
ctest --test-dir build-cov --output-on-failure -j 4 > /dev/null
echo "ok  test suite under coverage instrumentation"

if command -v gcovr > /dev/null; then
  gcovr -r . build-cov \
    --filter 'src/sched/' --filter 'src/graph/' \
    --print-summary --fail-under-line "$FLOOR"
else
  python3 - "$FLOOR" <<'EOF'
import re, subprocess, sys, tempfile
from pathlib import Path

floor = float(sys.argv[1])
gcda = [p for p in Path("build-cov").rglob("*.gcda")
        if re.search(r"src/(sched|graph)/", str(p))]
if not gcda:
    sys.exit("coverage: no .gcda files for src/sched or src/graph")
covered = total = 0.0
per_file = {}
with tempfile.TemporaryDirectory() as td:
    for g in gcda:
        out = subprocess.run(["gcov", "-n", str(g.resolve())], cwd=td,
                             capture_output=True, text=True).stdout
        for m in re.finditer(
            r"File '([^']*src/(?:sched|graph)/[^']*)'\n"
            r"Lines executed:([\d.]+)% of (\d+)", out):
            f, pct, n = m.group(1), float(m.group(2)), int(m.group(3))
            # A file appears once per test binary linking it; keep the max.
            prev = per_file.get(f)
            if prev is None or pct * n > prev[0] * prev[1]:
                per_file[f] = (pct, n)
for f in sorted(per_file):
    pct, n = per_file[f]
    covered += pct / 100.0 * n
    total += n
    print(f"{f:60} {pct:6.1f}% of {n}")
overall = 100.0 * covered / total
print(f"{'TOTAL (src/sched + src/graph)':60} {overall:6.1f}% of {int(total)}")
if overall < floor:
    sys.exit(f"coverage: {overall:.1f}% is below the {floor:.0f}% floor")
print(f"ok  coverage {overall:.1f}% >= floor {floor:.0f}%")
EOF
fi
