#!/usr/bin/env bash
# clang-tidy over every translation unit in src/, using the checks declared
# in .clang-tidy (warnings are errors there). Needs a compile database:
# configures build-tidy/ with CMAKE_EXPORT_COMPILE_COMMANDS on first use.
# Skips gracefully (exit 0 with a notice) when clang-tidy is not installed,
# so the local check.sh flow works on minimal toolchains; CI installs it.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "tidy: clang-tidy not installed — skipping (CI runs it)" >&2
  exit 0
fi

cmake -B build-tidy -G Ninja -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
# GTest/benchmark headers are only needed for tests/ and bench/, which are
# not tidied; src/ is self-contained against the compile database.
mapfile -t sources < <(find src -name '*.cpp' | sort)
echo "tidy: ${#sources[@]} files"
if command -v run-clang-tidy > /dev/null 2>&1; then
  run-clang-tidy -p build-tidy -quiet "${sources[@]}"
else
  clang-tidy -p build-tidy --quiet "${sources[@]}"
fi
echo "tidy: clean"
