#!/usr/bin/env python3
"""Benchmark regression gate.

Compares a fresh google-benchmark JSON run against the committed baseline
(BENCH_sched.json / BENCH_sim.json at the repo root) and fails on a
regression of any *named hot benchmark* beyond a noise-aware threshold.

Subcommands
-----------
  run      <binary> <out.json>   run a bench binary with repetitions and
                                 write aggregate JSON (refuses non-Release)
  check    <current.json> --baseline <baseline.json>
                                 compare against a baseline; exit 1 on any
                                 gated regression
  validate <file.json>           assert the JSON came from a Release build
  selftest <baseline.json>       prove the gate trips: synthesize a current
                                 run with one hot benchmark slowed past
                                 its noise-aware threshold and assert
                                 check() fails on it (and passes
                                 on an unmodified copy)

Noise handling: per benchmark the threshold is
    base_threshold + noise_margin
where noise_margin = NOISE_CV_MULT * max(baseline cv, current cv) when the
JSON carries repetition aggregates (median/cv rows), else NOISE_FALLBACK.
Benchmarks faster than NOISE_FLOOR_NS are never gated (sub-microsecond
timings are dominated by loop overhead jitter).

The committed baselines are regenerated with scripts/check.sh --bench-regen
(Release build tree, build-bench/).
"""

import argparse
import json
import math
import subprocess
import sys

# The perf contract: regressions of these benchmarks fail CI. Names must
# match the google-benchmark run_name (aggregate rows strip the suffix).
GATED_BENCHMARKS = {
    "BENCH_sched.json": [
        "BM_BuildInstrDag/120",
        "BM_ScheduleConservative/60",
        "BM_ScheduleConservative/120",
        "BM_ScheduleOptimal/120",
        "BM_ScheduleManyProcs/32",
        "BM_RunPointJobs/1/real_time",
    ],
    "BENCH_sim.json": [
        "BM_SimulateSbm/120",
        "BM_SimulateDbm/120",
        "BM_ValidateTrace",
    ],
    "BENCH_batch.json": [
        "BM_BatchSimulateSbm/1",
        "BM_BatchSimulateSbm/8",
        "BM_BatchSimulateSbm/16",
        "BM_BatchSimulateDbm/8",
        "BM_SummarizeCompletion",
    ],
    # BM_ServeStatsSnapshot rides in BENCH_serve.json for visibility but is
    # deliberately ungated: at ~7.5us its cross-process run-to-run spread
    # (heap/ASLR layout) reaches 20% while within-run cv reads <2%, so the
    # cv-widened threshold can't absorb it — and a 1 Hz stats poll is not a
    # hot path. The telemetry-on hit path (BM_ServeCacheHitAccessLog) is the
    # gated overhead contract.
    "BENCH_serve.json": [
        "BM_ServeScheduleCold/60",
        "BM_ServeScheduleCold/120",
        "BM_ServeCacheHit/120",
        "BM_ServeCacheHitAccessLog/120",
        "BM_FingerprintCanonicalize/120",
    ],
    # BM_ExecRunBlocking rides in BENCH_exec.json for visibility but is
    # ungated: it is dominated by thread spawn + scheduler behavior on a
    # loaded core, which the cv-widened threshold cannot absorb. The
    # barrier-crossing latencies (manual time, spawn excluded) and the
    # pure-CPU lowering pass are the gated contract.
    "BENCH_exec.json": [
        "BM_ExecBarrierCentral/2/manual_time",
        "BM_ExecBarrierCentral/8/manual_time",
        "BM_ExecBarrierTree/2/manual_time",
        "BM_ExecBarrierTree/8/manual_time",
        "BM_ExecLower/24",
        "BM_ExecLower/120",
    ],
}

BASE_THRESHOLD = 0.10     # the ">10% regression" contract from the ISSUE
NOISE_CV_MULT = 3.0       # widen by 3 sigma-equivalents of measured cv
NOISE_FALLBACK = 0.05     # no repetition data -> assume 5% run-to-run noise
NOISE_FLOOR_NS = 500.0    # never gate sub-500ns benchmarks
REPETITIONS = 7


def load(path):
    with open(path) as f:
        return json.load(f)


def is_release(doc):
    """A run counts as Release iff the binary stamped bm_build_type=Release.

    context.library_build_type reports how the *benchmark library* was
    compiled (often "debug" for distro packages even under -O2), so the
    bench mains stamp the project's own CMAKE_BUILD_TYPE into the context
    via AddCustomContext — that is the authoritative signal.
    """
    ctx = doc.get("context", {})
    return ctx.get("bm_build_type", "").lower() == "release"


def medians_and_cv(doc):
    """Map run_name -> (median cpu_time ns, cv or None).

    Prefers repetition aggregates; falls back to plain iteration rows
    (cv None) for legacy single-run baselines.
    """
    meds, cvs, singles = {}, {}, {}
    for row in doc.get("benchmarks", []):
        name = row.get("run_name", row.get("name", ""))
        if row.get("run_type") == "aggregate":
            if row.get("aggregate_name") == "median":
                meds[name] = float(row["cpu_time"])
            elif row.get("aggregate_name") == "cv":
                # cv rows report the ratio directly (time_unit-free).
                cvs[name] = float(row["cpu_time"])
        elif row.get("run_type") == "iteration" and name not in singles:
            singles[name] = float(row["cpu_time"])
    out = {}
    for name, med in meds.items():
        out[name] = (med, cvs.get(name))
    for name, t in singles.items():
        out.setdefault(name, (t, None))
    return out


def compare(baseline_doc, current_doc, gated, out=sys.stdout):
    """Returns the list of failed benchmark names; prints a report."""
    base = medians_and_cv(baseline_doc)
    cur = medians_and_cv(current_doc)
    failures = []
    missing = [n for n in gated if n not in cur]
    if missing:
        print(f"FAIL: gated benchmarks missing from current run: {missing}",
              file=out)
        failures.extend(missing)
    print(f"{'benchmark':42} {'baseline':>12} {'current':>12} "
          f"{'ratio':>7} {'allowed':>8}  verdict", file=out)
    for name in sorted(set(base) | set(cur)):
        if name not in base or name not in cur:
            continue
        b, bcv = base[name]
        c, ccv = cur[name]
        ratio = c / b if b > 0 else math.inf
        noise = max(bcv or 0.0, ccv or 0.0)
        margin = NOISE_CV_MULT * noise if noise > 0 else NOISE_FALLBACK
        allowed = 1.0 + BASE_THRESHOLD + margin
        gated_here = name in gated and b >= NOISE_FLOOR_NS
        verdict = "ok"
        if ratio > allowed:
            verdict = "REGRESSED" if gated_here else "regressed (ungated)"
            if gated_here:
                failures.append(name)
        elif not gated_here:
            verdict = "ok (ungated)"
        print(f"{name:42} {b:10.0f}ns {c:10.0f}ns {ratio:7.3f} {allowed:8.3f}"
              f"  {verdict}", file=out)
    return failures


def cmd_run(args):
    cmd = [
        args.binary,
        f"--benchmark_repetitions={args.repetitions}",
        "--benchmark_report_aggregates_only=false",
        "--benchmark_format=json",
        f"--benchmark_out={args.out}",
        "--benchmark_out_format=json",
    ]
    res = subprocess.run(cmd, stdout=subprocess.DEVNULL)
    if res.returncode != 0:
        print(f"bench_gate: {args.binary} exited {res.returncode}",
              file=sys.stderr)
        return res.returncode
    doc = load(args.out)
    if not is_release(doc):
        print(f"bench_gate: refusing to keep {args.out}: {args.binary} is "
              "not a Release build (context.bm_build_type != Release). "
              "Benchmark baselines must come from build-bench/ "
              "(scripts/check.sh --bench-regen).", file=sys.stderr)
        return 1
    print(f"ok  {args.binary} -> {args.out} (Release, "
          f"{args.repetitions} repetitions)")
    return 0


def cmd_check(args):
    baseline = load(args.baseline)
    current = load(args.current)
    if not is_release(current):
        print("bench_gate: current run is not from a Release build; "
              "refusing to compare.", file=sys.stderr)
        return 1
    gated = GATED_BENCHMARKS.get(args.gate_set or args.baseline.split("/")[-1],
                                 [])
    if not gated:
        print(f"bench_gate: no gated benchmark list for {args.baseline}",
              file=sys.stderr)
        return 2
    failures = compare(baseline, current, gated)
    if failures:
        print(f"bench_gate: FAIL — {len(failures)} gated regression(s): "
              f"{failures}", file=sys.stderr)
        return 1
    print("bench_gate: all gated benchmarks within threshold")
    return 0


def cmd_validate(args):
    doc = load(args.file)
    if not is_release(doc):
        print(f"bench_gate: {args.file} did not come from a Release build",
              file=sys.stderr)
        return 1
    print(f"ok  {args.file} is a Release-build baseline")
    return 0


def cmd_selftest(args):
    baseline = load(args.baseline)
    gated = GATED_BENCHMARKS.get(args.baseline.split("/")[-1], [])
    if not gated:
        print(f"bench_gate selftest: no gated list for {args.baseline}",
              file=sys.stderr)
        return 2
    names = {r.get("run_name", r.get("name")) for r in baseline["benchmarks"]}
    victims = [n for n in gated if n in names]
    if not victims:
        print("bench_gate selftest: baseline has none of the gated "
              "benchmarks", file=sys.stderr)
        return 2

    # An identical run must pass (mark it Release for the comparison).
    clean = json.loads(json.dumps(baseline))
    clean.setdefault("context", {})["bm_build_type"] = "Release"
    if compare(baseline, clean, gated, out=open("/dev/null", "w")):
        print("bench_gate selftest: FAIL — identical run was flagged",
              file=sys.stderr)
        return 1

    # Slowing one gated benchmark past its own noise-aware threshold must
    # trip the gate. The factor is derived from the victim's measured cv
    # (allowed ratio + 10 points of headroom) so the selftest stays
    # meaningful on noisy machines where a fixed 25% could sit inside the
    # widened threshold. cv aggregate rows are left untouched: a uniformly
    # slowed run has the same relative spread, and scaling them would
    # inflate the very margin the synthetic regression must beat.
    victim = victims[0]
    _, vcv = medians_and_cv(baseline).get(victim, (0.0, None))
    noise = vcv if vcv else NOISE_FALLBACK
    factor = 1.0 + BASE_THRESHOLD + NOISE_CV_MULT * noise + 0.10
    slowed = json.loads(json.dumps(clean))
    for row in slowed["benchmarks"]:
        if row.get("run_name", row.get("name")) == victim \
                and row.get("aggregate_name") != "cv":
            row["cpu_time"] = float(row["cpu_time"]) * factor
            row["real_time"] = float(row.get("real_time", 0)) * factor
    failures = compare(baseline, slowed, gated, out=open("/dev/null", "w"))
    if victim not in failures:
        print(f"bench_gate selftest: FAIL — {factor:.2f}x slowdown of "
              f"{victim} was not flagged", file=sys.stderr)
        return 1
    print(f"ok  bench_gate selftest ({args.baseline}: identical run passes, "
          f"{factor:.2f}x slowdown of {victim} trips the gate)")
    return 0


def main():
    p = argparse.ArgumentParser(description=__doc__)
    sub = p.add_subparsers(dest="cmd", required=True)

    r = sub.add_parser("run", help="run a bench binary to aggregate JSON")
    r.add_argument("binary")
    r.add_argument("out")
    r.add_argument("--repetitions", type=int, default=REPETITIONS)
    r.set_defaults(fn=cmd_run)

    c = sub.add_parser("check", help="compare current vs baseline")
    c.add_argument("current")
    c.add_argument("--baseline", required=True)
    c.add_argument("--gate-set", default=None,
                   help="key into the gated-benchmark table "
                        "(default: baseline filename)")
    c.set_defaults(fn=cmd_check)

    v = sub.add_parser("validate", help="assert a JSON is Release-built")
    v.add_argument("file")
    v.set_defaults(fn=cmd_validate)

    s = sub.add_parser("selftest", help="prove the gate trips on a slowdown")
    s.add_argument("baseline")
    s.set_defaults(fn=cmd_selftest)

    args = p.parse_args()
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
